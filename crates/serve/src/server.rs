//! The serve loop: a discrete-event simulation of the GPU pool on the
//! virtual clock.
//!
//! Time is simulated GPU cycles, advanced only by three event kinds — job
//! arrivals, GPU completions, and retry due-times — so a session is a pure
//! function of its [`ServeConfig`] and [`FrameService`]: bit-identical
//! logs, stats and delivered frames on every run and every `PATU_THREADS`
//! setting. The loop per step: admit every arrival due now (shedding on a
//! full queue), requeue every retry that has cooled down, dispatch EDF
//! batches onto available GPUs with the governor's quantized threshold,
//! else advance the clock to the next event.
//!
//! The failure domain threads through every dispatch: the session's
//! [`HealthModel`] (scripted by [`ServeConfig::scenario`]) can crash a GPU
//! mid-batch (work in flight is lost at the outage's start cycle),
//! stretch its service times through straggle windows, or corrupt a
//! frame's hash in flight. The resilience machinery answers with typed
//! retries, hedged duplicate dispatch for at-risk interactive jobs,
//! per-GPU circuit breakers, and the brownout ladder that leans lost
//! capacity onto the quality governor.

use crate::error::ServeError;
use crate::exec::{corrupted, FrameService, RenderKey, ServedFrame};
use crate::governor::QualityGovernor;
use crate::health::{BreakerState, CircuitBreaker, HealthModel};
use crate::job::{CompletedJob, Job, Outcome, Tier};
use crate::queue::{Admission, AdmissionQueue};
use crate::trace::{AttemptTraceKind, TraceBuilder};
use crate::workload::{self, ServeConfig};
use patu_core::FilterPolicy;
use patu_gmath::DetRng;
use patu_obs::json::{escape, num_fixed};
use patu_obs::report::Table;
use patu_obs::{
    sink, Collector, Event, EventKind, FrameTelemetry, Log2Histogram, SloAlert, SloTracker,
    TelemetryConfig, Track,
};
use std::collections::BTreeMap;

/// Session-level counters and distributions.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Jobs the workload generator submitted.
    pub submitted: u64,
    /// Jobs rendered and delivered (on time or late).
    pub delivered: u64,
    /// Jobs rejected at admission (queue full).
    pub shed: u64,
    /// Jobs whose every attempt failed — crashed mid-render or detected
    /// corrupt — with no retry budget (or deadline headroom) left.
    pub failed: u64,
    /// Delivered jobs that finished after their deadline.
    pub deadline_misses: u64,
    /// Delivered jobs rendered below the base threshold — quality the
    /// governor traded for throughput.
    pub degrades: u64,
    /// Batches dispatched (each paid one scene-setup cost).
    pub batches: u64,
    /// Retries scheduled after failed attempts.
    pub retries: u64,
    /// Hedged (duplicate) dispatches issued for at-risk interactive jobs.
    pub hedges: u64,
    /// Hedges the secondary GPU won.
    pub hedge_wins: u64,
    /// Times a per-GPU circuit breaker opened.
    pub breaker_opens: u64,
    /// Distinct GPU outage episodes the session collided with.
    pub outages: u64,
    /// Job executions stretched by a straggle window.
    pub straggles: u64,
    /// Attempts that came back with a corrupt frame hash (transient GPU
    /// faults).
    pub corrupt_frames: u64,
    /// SLO burn-rate alerts fired (see [`ServeReport::alerts`]).
    pub slo_alerts: u64,
    /// Virtual cycle the last job finished.
    pub makespan: u64,
    /// Sum of delivered SSIM (for the mean).
    pub ssim_sum: f64,
    /// Queue depth observed at each admission.
    pub queue_depth: Log2Histogram,
    /// Deadline headroom of on-time deliveries.
    pub slack: Log2Histogram,
    /// Arrival→delivery latency per tier (index = `Tier::index()`).
    pub latency: [Log2Histogram; 3],
}

impl ServeStats {
    /// Mean SSIM over delivered jobs (1.0 for an empty session: no frame
    /// was degraded).
    pub fn mean_ssim(&self) -> f64 {
        if self.delivered == 0 {
            1.0
        } else {
            self.ssim_sum / self.delivered as f64
        }
    }

    /// The fraction of submitted jobs that were shed at admission or
    /// delivered past deadline (failures are counted separately — see
    /// [`ServeStats::violation_rate`] for the full contract metric).
    pub fn miss_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.deadline_misses + self.shed) as f64 / self.submitted as f64
        }
    }

    /// The fraction of submitted jobs whose contract was violated in any
    /// way: shed at admission, delivered past deadline, or failed
    /// outright. The chaos benchmarks' headline SLO metric.
    pub fn violation_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.deadline_misses + self.shed + self.failed) as f64 / self.submitted as f64
        }
    }

    /// Delivered jobs per million virtual cycles.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.delivered as f64 * 1.0e6 / self.makespan as f64
        }
    }
}

/// Everything a session produces.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Counters and distributions.
    pub stats: ServeStats,
    /// Terminal record of every job, in completion order.
    pub completed: Vec<CompletedJob>,
    /// The JSONL serve log, schema-checked by `patu_obs::schema`: one
    /// `"serve"` line per job, plus (at [`patu_obs::TraceLevel::Spans`])
    /// one `"trace"` causal-tree line per job, plus one `"slo"` line per
    /// fired burn-rate alert when [`ServeConfig::slo`] tracking is on.
    pub log: String,
    /// SLO burn-rate alerts in firing order — deterministic virtual-clock
    /// cycles, bit-identical across runs and `PATU_THREADS` settings.
    pub alerts: Vec<SloAlert>,
    /// Spans (per job and batch, on per-GPU tracks), session counters,
    /// and per-GPU outage postmortems, exportable as a Chrome trace.
    pub telemetry: FrameTelemetry,
}

impl ServeReport {
    /// Per-tier latency table for run summaries.
    pub fn table(&self) -> String {
        let mut t = Table::new(&["tier", "delivered", "p50", "p95", "p99"]);
        for tier in Tier::ALL {
            let h = &self.stats.latency[tier.index()];
            t.row(&[
                tier.label().to_string(),
                h.count().to_string(),
                h.p50().to_string(),
                h.p95().to_string(),
                h.p99().to_string(),
            ]);
        }
        t.render()
    }

    /// The session as a Chrome Trace Event Format document.
    pub fn chrome_trace(&self) -> String {
        sink::chrome_trace(std::slice::from_ref(&self.telemetry))
    }
}

/// Maps an (already quantized) threshold onto its bucket index.
fn bucket_of(theta: f64, steps: u32) -> u32 {
    let steps = steps.max(1);
    (theta.clamp(0.0, 1.0) * f64::from(steps)).round() as u32
}

/// How one execution attempt on one GPU ended.
enum AttemptEnd {
    /// Delivered a clean frame at `finish`.
    Done { finish: u64 },
    /// Computed to completion but the hash came back corrupt (transient
    /// fault); the cycles are spent either way.
    Corrupt { finish: u64 },
    /// The attempt was lost to an outage; `at` is when the hang detector
    /// reported it (progress stopped + one mean service time), which is
    /// also when the dispatcher reclaims the GPU slot.
    Crashed { at: u64 },
}

/// What a standard SLO spec measures — which terminal outcomes it
/// observes and what counts as "bad". Paired positionally with
/// [`patu_obs::SloOptions::standard_specs`], which returns the suite in
/// exactly this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SloKind {
    /// Deadline misses (and outright failures) for one tier's jobs.
    Miss(Tier),
    /// Deliveries below the configured SSIM floor.
    SsimFloor,
    /// Jobs shed at admission, over all terminals.
    Shed,
}

/// The kinds matching `SloOptions::standard_specs` element-for-element.
const SLO_KINDS: [SloKind; 5] = [
    SloKind::Miss(Tier::Interactive),
    SloKind::Miss(Tier::Standard),
    SloKind::Miss(Tier::Batch),
    SloKind::SsimFloor,
    SloKind::Shed,
];

/// State for one session run; split out so the event loop reads linearly.
struct Session<'a, S: FrameService> {
    cfg: &'a ServeConfig,
    service: &'a mut S,
    governor: QualityGovernor,
    queue: AdmissionQueue,
    health: HealthModel,
    hazardous: bool,
    breakers: Vec<CircuitBreaker>,
    /// Retries cooling down, keyed `(due, job id)` — drained into the
    /// queue as the clock passes each due cycle.
    retries: BTreeMap<(u64, u64), Job>,
    /// Failed executions so far per in-flight job id.
    attempts: BTreeMap<u64, u32>,
    /// Outage episodes (gpu, start) already postmortem-dumped.
    dumped_outages: Vec<(usize, u64)>,
    gpu_free: Vec<u64>,
    gpu_obs: Vec<Collector>,
    /// Session-track collector: job lifecycle spans (the flow roots the
    /// per-GPU render spans link to), SLO burn events, and burn
    /// postmortem dumps.
    obs: Collector,
    /// In-flight causal trace trees, keyed by job id; populated only at
    /// `TraceLevel::Spans`, drained at each job's terminal outcome.
    traces: BTreeMap<u64, TraceBuilder>,
    /// Whether per-job trace trees are being built (spans-level trace).
    trace_jobs: bool,
    /// Burn-rate trackers paired with what they measure; empty when SLO
    /// tracking is off.
    slos: Vec<(SloKind, SloTracker)>,
    /// Alerts fired so far, in firing order.
    alerts: Vec<SloAlert>,
    /// Delivered-SSIM floor (×1000) for the `slo::ssim_floor` objective.
    ssim_floor_x1000: u64,
    mean_service: u64,
    now: u64,
    stats: ServeStats,
    completed: Vec<CompletedJob>,
    log: String,
}

impl<'a, S: FrameService> Session<'a, S> {
    fn log_line(&mut self, job: &Job, done: &CompletedJob) {
        let scene = self.cfg.scenes.get(job.scene).map_or("?", String::as_str);
        let head = format!(
            "{{\"type\":\"serve\",\"job\":{},\"client\":{},\"tier\":{},\"scene\":\"{}\",\"frame\":{},\"arrival\":{},\"deadline\":{}",
            job.id,
            job.client,
            job.tier.index(),
            escape(scene),
            job.frame,
            job.arrival,
            job.deadline,
        );
        let tail = match done.outcome {
            Outcome::Shed => ",\"outcome\":\"shed\"}".to_string(),
            Outcome::Failed => format!(
                ",\"outcome\":\"failed\",\"finish\":{},\"retries\":{}}}",
                done.finish, done.retries,
            ),
            Outcome::Delivered => format!(
                ",\"outcome\":\"delivered\",\"finish\":{},\"theta\":{},\"ssim\":{},\"hash\":{},\"gpu\":{},\"retries\":{},\"hedged\":{}}}",
                done.finish,
                num_fixed(done.theta, 4),
                num_fixed(done.ssim, 6),
                done.image_hash,
                done.gpu,
                done.retries,
                done.hedged,
            ),
        };
        self.log.push_str(&head);
        self.log.push_str(&tail);
        self.log.push('\n');
    }

    /// Opens a causal trace tree for a newly submitted job (spans-level
    /// trace only), reserving the session-track span id its GPU render
    /// spans will flow-link to.
    fn begin_trace(&mut self, job: &Job) {
        if self.trace_jobs {
            let flow = self.obs.reserve_span_id();
            self.traces.insert(job.id, TraceBuilder::new(job, flow));
        }
    }

    /// Feeds a job's terminal outcome to every SLO tracker it is in scope
    /// for, returning the alerts that fired on this observation.
    fn observe_slos(
        &mut self,
        job: &Job,
        outcome: Outcome,
        finish: u64,
        ssim: f64,
    ) -> Vec<SloAlert> {
        let mut fired = Vec::new();
        for (kind, tracker) in &mut self.slos {
            let bad = match (*kind, outcome) {
                // Shed rate is measured over every terminal: the objective
                // is "what fraction of submitted work did we turn away".
                (SloKind::Shed, _) => outcome == Outcome::Shed,
                // Miss objectives see only their tier's executed jobs:
                // a late delivery or an outright failure burns budget.
                (SloKind::Miss(t), Outcome::Delivered) if t == job.tier => finish > job.deadline,
                (SloKind::Miss(t), Outcome::Failed) if t == job.tier => true,
                // The SSIM floor sees deliveries only.
                (SloKind::SsimFloor, Outcome::Delivered) => {
                    ssim * 1000.0 < self.ssim_floor_x1000 as f64
                }
                _ => continue,
            };
            if let Some(alert) = tracker.observe(finish, bad, job.id) {
                fired.push(alert);
            }
        }
        fired
    }

    /// Common terminal-outcome bookkeeping, after the `"serve"` log line:
    /// SLO observations (alerts land in the flight recorder, the event
    /// stream, the log, and the job's own trace), then the trace line.
    fn terminal(&mut self, job: &Job, outcome: Outcome, finish: u64, ssim: f64) {
        let fired = if self.slos.is_empty() {
            Vec::new()
        } else {
            self.observe_slos(job, outcome, finish, ssim)
        };
        for alert in &fired {
            self.stats.slo_alerts += 1;
            self.obs.event(Event {
                cycle: alert.cycle,
                cluster: 0,
                tile: 0,
                kind: EventKind::SloBurn {
                    slo: alert.slo,
                    burn_x1000: alert.burn_fast_x1000,
                },
            });
            self.obs.dump("slo_burn", alert.cycle, 0);
        }
        if let Some(mut builder) = self.traces.remove(&job.id) {
            for alert in &fired {
                builder.slo_burn(alert.slo);
            }
            self.obs.span_with_id(
                builder.flow(),
                "serve::lifecycle",
                job.arrival,
                finish.max(job.arrival),
                0,
                ("job", job.id),
            );
            self.log.push_str(&builder.finish(outcome, finish));
        }
        for alert in &fired {
            self.log.push_str(&alert.jsonl_line());
            self.log.push('\n');
        }
        self.alerts.extend(fired);
    }

    fn shed(&mut self, job: Job) {
        let done = CompletedJob {
            job,
            outcome: Outcome::Shed,
            finish: job.arrival,
            theta: 0.0,
            ssim: 0.0,
            image_hash: 0,
            degraded: false,
            gpu: 0,
            retries: 0,
            hedged: false,
        };
        self.stats.shed += 1;
        self.log_line(&job, &done);
        self.completed.push(done);
        self.terminal(&job, Outcome::Shed, job.arrival, 0.0);
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        job: Job,
        finish: u64,
        theta: f64,
        ssim: f64,
        hash: u64,
        gpu: usize,
        retries: u32,
        hedged: bool,
    ) {
        let degraded = theta + 1e-9 < self.cfg.base_threshold;
        let done = CompletedJob {
            job,
            outcome: Outcome::Delivered,
            finish,
            theta,
            ssim,
            image_hash: hash,
            degraded,
            gpu: gpu as u32,
            retries,
            hedged,
        };
        self.stats.delivered += 1;
        self.stats.deadline_misses += u64::from(done.missed_deadline());
        self.stats.degrades += u64::from(degraded);
        self.stats.ssim_sum += ssim;
        self.stats.makespan = self.stats.makespan.max(finish);
        self.stats.latency[job.tier.index()].record(done.latency());
        if !done.missed_deadline() {
            self.stats.slack.record(done.slack());
        }
        self.log_line(&job, &done);
        self.completed.push(done);
        self.terminal(&job, Outcome::Delivered, finish, ssim);
    }

    /// Records a job's terminal failure at cycle `finish` after spending
    /// `retries` retries.
    fn fail(&mut self, job: Job, finish: u64, retries: u32) {
        let done = CompletedJob {
            job,
            outcome: Outcome::Failed,
            finish,
            theta: 0.0,
            ssim: 0.0,
            image_hash: 0,
            degraded: false,
            gpu: 0,
            retries,
            hedged: false,
        };
        self.stats.failed += 1;
        self.stats.makespan = self.stats.makespan.max(finish);
        self.log_line(&job, &done);
        self.completed.push(done);
        self.terminal(&job, Outcome::Failed, finish, 0.0);
    }

    /// Whether `gpu` can take a dispatch right now: idle and not
    /// breaker-blocked. The scheduler deliberately has *no* oracle view
    /// of the health script — a GPU inside an outage window still looks
    /// idle here, the dispatch hangs until the detection timeout, and the
    /// circuit breaker is how the scheduler *learns* the GPU is bad.
    fn gpu_available(&self, gpu: usize) -> bool {
        self.gpu_free.get(gpu).is_some_and(|&f| f <= self.now)
            && self
                .breakers
                .get(gpu)
                .is_some_and(|b| b.available(self.now))
    }

    /// The earliest cycle `gpu` could take work again, folding in its
    /// busy-until time and any open breaker (the scheduler's only
    /// knowledge of GPU health).
    fn gpu_next_free(&self, gpu: usize) -> u64 {
        let mut t = self.gpu_free.get(gpu).copied().unwrap_or(0);
        if let Some(until) = self
            .breakers
            .get(gpu)
            .and_then(|b| b.blocked_until(self.now))
        {
            t = t.max(until);
        }
        t
    }

    /// The fraction of the pool the scheduler believes is healthy at
    /// `now`: GPUs whose breaker is not open. Busy is not unhealthy, and
    /// an undetected outage still counts as healthy — the brownout ladder
    /// reacts to *known* capacity loss, which is exactly what the
    /// breakers encode.
    fn healthy_fraction(&self) -> f64 {
        let total = self.gpu_free.len().max(1);
        let healthy = (0..self.gpu_free.len())
            .filter(|&g| self.breakers[g].available(self.now))
            .count();
        healthy as f64 / total as f64
    }

    /// Records an outage collision: one fault event and one flight-recorder
    /// postmortem per distinct episode, no matter how many jobs it killed.
    fn note_outage(&mut self, gpu: usize, at: u64) {
        if self.dumped_outages.contains(&(gpu, at)) {
            return;
        }
        self.dumped_outages.push((gpu, at));
        self.stats.outages += 1;
        self.gpu_obs[gpu].event(Event {
            cycle: at,
            cluster: gpu as u32,
            tile: 0,
            kind: EventKind::Fault {
                site: "outages",
                count: 1,
            },
        });
        self.gpu_obs[gpu].dump("gpu_outage", at, 0);
    }

    /// Records one attempt (and its render work, when cycles were spent)
    /// into the job's trace tree, if one is being built.
    #[allow(clippy::too_many_arguments)]
    fn trace_attempt(
        &mut self,
        job: &Job,
        span: &'static str,
        kind: AttemptTraceKind,
        gpu: usize,
        attempt: u32,
        start: u64,
        end: u64,
        cycles: u64,
    ) {
        if let Some(builder) = self.traces.get_mut(&job.id) {
            let id = builder.attempt(span == "serve::hedge", kind, gpu, attempt, start, end);
            if cycles > 0 {
                builder.render(id, start, end, cycles);
            }
        }
    }

    /// Runs one attempt of `job` on `gpu` starting at `start`, applying
    /// the health model: straggle windows stretch the cycles, an outage
    /// kills the attempt, and a transient draw corrupts the delivered
    /// hash.
    ///
    /// Outages are detected by timeout, not oracle: an attempt thrown
    /// into a dead GPU (or cut down mid-flight) hangs from the moment
    /// progress stops until one mean service time has passed, and only
    /// then is reported crashed — that detection latency is the price the
    /// control arm keeps paying once its pool loses a GPU.
    fn run_attempt(
        &mut self,
        gpu: usize,
        job: &Job,
        frame: &ServedFrame,
        start: u64,
        attempt: u32,
        span: &'static str,
    ) -> AttemptEnd {
        let timeout = self.mean_service.max(1);
        if let Some((episode, _)) = self.health.outage_covering(gpu, start) {
            self.note_outage(gpu, episode);
            let at = start.saturating_add(timeout);
            self.trace_attempt(
                job,
                span,
                AttemptTraceKind::Crashed,
                gpu,
                attempt,
                start,
                at,
                0,
            );
            return AttemptEnd::Crashed { at };
        }
        let factor = self.health.straggle_factor(gpu, start);
        let mut cycles = frame.cycles.max(1);
        if factor > 1.0 {
            cycles = ((cycles as f64) * factor).max(1.0) as u64;
            self.stats.straggles += 1;
            self.gpu_obs[gpu].event(Event {
                cycle: start,
                cluster: gpu as u32,
                tile: 0,
                kind: EventKind::Fault {
                    site: "stragglers",
                    count: 1,
                },
            });
        }
        let finish = start.saturating_add(cycles);
        if let Some((at, _)) = self.health.next_outage_in(gpu, start, finish) {
            self.note_outage(gpu, at);
            let detected = at.saturating_add(timeout);
            self.trace_attempt(
                job,
                span,
                AttemptTraceKind::Crashed,
                gpu,
                attempt,
                start,
                detected,
                0,
            );
            return AttemptEnd::Crashed { at: detected };
        }
        self.governor.observe(cycles);
        // The per-GPU render span parents to the job's session-track
        // lifecycle span, so the Chrome exporter draws a flow arrow from
        // the job lane down into the GPU lane that executed it.
        let flow = self.traces.get(&job.id).map_or(0, TraceBuilder::flow);
        self.gpu_obs[gpu].span_node(span, start, finish, flow, "job", job.id);
        // A transient fault leaves the cycles spent but the content hash
        // wrong — detection is comparing the observed hash against the
        // frame's own content hash.
        let salt = self.cfg.seed ^ job.id ^ (u64::from(attempt) << 32) ^ ((gpu as u64) << 48);
        let observed = if self.health.transient_fails(gpu, job.id, attempt) {
            corrupted(frame.image_hash, salt)
        } else {
            frame.image_hash
        };
        if observed != frame.image_hash {
            self.stats.corrupt_frames += 1;
            self.trace_attempt(
                job,
                span,
                AttemptTraceKind::Corrupt,
                gpu,
                attempt,
                start,
                finish,
                cycles,
            );
            return AttemptEnd::Corrupt { finish };
        }
        self.trace_attempt(
            job,
            span,
            AttemptTraceKind::Clean,
            gpu,
            attempt,
            start,
            finish,
            cycles,
        );
        AttemptEnd::Done { finish }
    }

    /// Routes a failed attempt: schedule a retry if the policy allows,
    /// else record the terminal failure. `failed_attempts` counts this
    /// one.
    ///
    /// The completion estimate handed to the policy includes the expected
    /// *queue wait* (`mean × depth / gpus`), not just the service time,
    /// and carries a 1.5× pessimism margin: retrying into a saturated
    /// pool delivers late — still a contract violation — while delaying
    /// every job queued behind the retry. A retry storm amplifying an
    /// outage into a latency collapse is the textbook failure mode this
    /// guards against, so the estimate errs toward giving up.
    fn schedule_retry(&mut self, job: Job, failed_attempts: u32, at: u64) {
        let wait = self.mean_service.saturating_mul(self.queue.depth() as u64)
            / (self.cfg.gpus as u64).max(1);
        let est = self.mean_service.saturating_add(wait).saturating_mul(3) / 2;
        match self.cfg.resilience.retry.next_attempt(
            &job,
            failed_attempts,
            at,
            est,
            self.mean_service,
        ) {
            Ok(due) => {
                self.stats.retries += 1;
                if let Some(builder) = self.traces.get_mut(&job.id) {
                    builder.retry_wait(at, due);
                }
                self.attempts.insert(job.id, failed_attempts);
                self.retries.insert((due, job.id), job);
            }
            Err(_) => {
                self.attempts.remove(&job.id);
                self.fail(job, at, failed_attempts.saturating_sub(1));
            }
        }
    }

    /// A failed attempt on `gpu`: feed the breaker, then retry or fail.
    fn attempt_failed(&mut self, job: Job, failed_attempts: u32, at: u64, gpu: usize) {
        if self.breakers[gpu].on_failure(at, self.mean_service) {
            self.stats.breaker_opens += 1;
        }
        self.schedule_retry(job, failed_attempts, at);
    }

    /// Dispatches one at-risk interactive job on two GPUs at once: the
    /// primary starts immediately, the secondary queues behind its GPU's
    /// in-flight work. The first clean completion wins (ties break toward
    /// the lower GPU index); the loser's cycles are sunk cost. Both sides
    /// failing counts as one attempt, retried from the later failure
    /// time.
    fn dispatch_hedged(
        &mut self,
        job: Job,
        primary: usize,
        secondary: usize,
        theta: f64,
        bucket: u32,
        setup: u64,
    ) -> Result<(), ServeError> {
        let key = RenderKey {
            scene: job.scene,
            frame: job.frame,
            bucket,
        };
        let served = self.service.serve(&[key])?;
        let Some(frame) = served.first().cloned() else {
            // The service contract is one frame per key; a short result
            // is an internal invariant violation surfaced as data.
            return Err(ServeError::UnknownScene {
                index: job.scene,
                scenes: self.cfg.scenes.len(),
            });
        };
        self.breakers[secondary].note_dispatch(self.now);
        self.stats.hedges += 1;
        if let Some(builder) = self.traces.get_mut(&job.id) {
            builder.dispatched(self.now);
        }
        let prior = self.attempts.get(&job.id).copied().unwrap_or(0);
        let attempt = prior + 1;
        let starts = [
            self.now.saturating_add(setup),
            self.gpu_free[secondary].max(self.now).saturating_add(setup),
        ];
        let mut winner: Option<(u64, usize)> = None;
        let mut last_fail = self.now;
        for (gpu, start) in [primary, secondary].into_iter().zip(starts) {
            match self.run_attempt(gpu, &job, &frame, start, attempt, "serve::hedge") {
                AttemptEnd::Done { finish } => {
                    self.gpu_free[gpu] = finish;
                    self.breakers[gpu].on_success();
                    if winner.is_none_or(|w| (finish, gpu) < w) {
                        winner = Some((finish, gpu));
                    }
                }
                AttemptEnd::Corrupt { finish } => {
                    self.gpu_free[gpu] = finish;
                    if self.breakers[gpu].on_failure(finish, self.mean_service) {
                        self.stats.breaker_opens += 1;
                    }
                    last_fail = last_fail.max(finish);
                }
                AttemptEnd::Crashed { at } => {
                    self.gpu_free[gpu] = at;
                    if self.breakers[gpu].on_failure(at, self.mean_service) {
                        self.stats.breaker_opens += 1;
                    }
                    last_fail = last_fail.max(at);
                }
            }
        }
        self.stats.batches += 1;
        match winner {
            Some((finish, gpu)) => {
                if gpu == secondary {
                    self.stats.hedge_wins += 1;
                }
                self.attempts.remove(&job.id);
                self.deliver(
                    job,
                    finish,
                    theta,
                    frame.ssim,
                    frame.image_hash,
                    gpu,
                    prior,
                    true,
                );
            }
            None => self.schedule_retry(job, attempt, last_fail),
        }
        Ok(())
    }

    /// Dispatches one EDF batch (or hedge) onto GPU `gpu`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::GpuUnavailable`] if `gpu` cannot take work at
    /// the current cycle — the typed replacement for what used to be an
    /// unchecked-index invariant.
    fn dispatch(&mut self, gpu: usize, setup: u64) -> Result<(), ServeError> {
        if !self.gpu_available(gpu) {
            return Err(ServeError::GpuUnavailable {
                gpu,
                until: self.gpu_next_free(gpu),
            });
        }
        let res = self.cfg.resilience;
        if res.brownout {
            let frac = self.healthy_fraction();
            self.governor.set_capacity_fraction(frac, res.brownout_gain);
        }
        let policy = self
            .governor
            .policy_for(self.queue.depth(), self.queue.capacity());
        let theta = QualityGovernor::effective_threshold(&policy);
        let bucket = bucket_of(theta, self.cfg.governor_steps);
        let Some(head) = self.queue.pop() else {
            return Ok(());
        };
        self.breakers[gpu].note_dispatch(self.now);
        // A half-open breaker admits exactly one trial job: a failed
        // probe should cost one job and re-open, not burn a whole batch.
        let probing = self.breakers[gpu].state() == BreakerState::HalfOpen;

        // Hedge at-risk interactive heads when the model is hazardous:
        // remaining slack below `slack_factor × (setup + mean)` — scaled
        // up by the target GPU's current straggle factor — means one
        // straggle or one transient would blow the deadline.
        if res.hedge.enabled && self.hazardous && head.tier == Tier::Interactive {
            let est = (self.mean_service.saturating_add(setup)) as f64
                * self.health.straggle_factor(gpu, self.now);
            let slack = head.deadline.saturating_sub(self.now);
            let at_risk = (slack as f64) < res.hedge.slack_factor * est;
            if at_risk {
                // The duplicate queues behind the soonest-free other GPU
                // whose breaker is closed; hedge only when that side is
                // expected to beat both the deadline and the straggling
                // primary — otherwise the duplicate is pure capacity
                // loss.
                let buddy = (0..self.gpu_free.len())
                    .filter(|&g| g != gpu && self.breakers[g].available(self.now))
                    .min_by_key(|&g| (self.gpu_free[g], g));
                if let Some(buddy) = buddy {
                    let b_done = self.gpu_free[buddy].max(self.now) as f64
                        + (self.mean_service.saturating_add(setup)) as f64
                            * self.health.straggle_factor(buddy, self.now);
                    if b_done <= head.deadline as f64 && b_done < self.now as f64 + est {
                        return self.dispatch_hedged(head, gpu, buddy, theta, bucket, setup);
                    }
                }
            }
        }

        let mut batch = vec![head];
        if !probing {
            batch.extend(
                self.queue
                    .take_same_scene(&head, self.cfg.batch_max.saturating_sub(1)),
            );
        }
        if self.trace_jobs {
            for j in &batch {
                if let Some(builder) = self.traces.get_mut(&j.id) {
                    builder.dispatched(self.now);
                }
            }
        }
        let keys: Vec<RenderKey> = batch
            .iter()
            .map(|j| RenderKey {
                scene: j.scene,
                frame: j.frame,
                bucket,
            })
            .collect();
        let served = self.service.serve(&keys)?;
        let start = self.now;
        let mut t = start.saturating_add(setup);
        let mut crashed: Option<u64> = None;
        for (job, frame) in batch.iter().zip(&served) {
            let prior = self.attempts.get(&job.id).copied().unwrap_or(0);
            let attempt = prior + 1;
            if let Some(at) = crashed {
                // Queued behind the crash: the work is lost at the crash
                // cycle without consuming fresh GPU time.
                self.attempt_failed(*job, attempt, at, gpu);
                continue;
            }
            match self.run_attempt(gpu, job, frame, t, attempt, "serve::job") {
                AttemptEnd::Done { finish } => {
                    t = finish;
                    self.breakers[gpu].on_success();
                    self.attempts.remove(&job.id);
                    self.deliver(
                        *job,
                        finish,
                        theta,
                        frame.ssim,
                        frame.image_hash,
                        gpu,
                        prior,
                        false,
                    );
                }
                AttemptEnd::Corrupt { finish } => {
                    t = finish;
                    self.attempt_failed(*job, attempt, finish, gpu);
                }
                AttemptEnd::Crashed { at } => {
                    crashed = Some(at);
                    self.attempt_failed(*job, attempt, at, gpu);
                }
            }
        }
        let end = crashed.unwrap_or(t);
        self.gpu_obs[gpu].span_arg("serve::batch", start, end, "jobs", batch.len() as u64);
        self.gpu_free[gpu] = end;
        self.stats.batches += 1;
        Ok(())
    }
}

/// Runs one serving session to completion.
///
/// # Errors
///
/// Returns [`ServeError`] for invalid configurations or service failures;
/// a clean run delivers, sheds, or fails every submitted job.
pub fn run_session<S: FrameService>(
    cfg: &ServeConfig,
    service: &mut S,
) -> Result<ServeReport, ServeError> {
    cfg.validate()?;
    let base_bucket = bucket_of(cfg.base_threshold, cfg.governor_steps);
    let mean_service = service.calibrate(base_bucket)?;
    let setup = (mean_service as f64 * cfg.setup_frac) as u64;
    let jobs = workload::generate(cfg, mean_service);
    let base_policy = FilterPolicy::Patu {
        threshold: cfg.base_threshold,
    };
    let telemetry_cfg = TelemetryConfig::with_level(cfg.trace);

    // The chaos horizon: the expected makespan (arrival span or total
    // work over the pool, whichever dominates) plus slack, so scenario
    // windows placed "mid-session" actually land mid-session at any load.
    let last_arrival = jobs.last().map_or(0, |j| j.arrival);
    let work = (jobs.len() as u64).saturating_mul(mean_service.max(1)) / cfg.gpus.max(1) as u64;
    let horizon = last_arrival
        .max(work)
        .saturating_add(mean_service.saturating_mul(4));
    let health = cfg
        .scenario
        .model(cfg.gpus, mean_service, horizon, cfg.seed);
    // The burn-rate windows scale off the same horizon the chaos scripts
    // use, so "fast" and "slow" mean the same thing at any load.
    let slo_specs = if cfg.slo.enabled {
        cfg.slo.standard_specs(horizon)
    } else {
        Vec::new()
    };

    let mut session = Session {
        cfg,
        service,
        governor: QualityGovernor::new(
            base_policy,
            mean_service,
            cfg.governor_floor,
            cfg.governor_steps,
            cfg.pressure_gain,
            cfg.governor,
        ),
        queue: AdmissionQueue::new(cfg.queue_capacity),
        hazardous: !health.is_calm(),
        health,
        breakers: (0..cfg.gpus)
            .map(|g| {
                CircuitBreaker::new(
                    cfg.resilience.breaker,
                    DetRng::new(cfg.seed ^ 0x6272_6561_6b65_7273).fork(g as u64),
                )
            })
            .collect(),
        retries: BTreeMap::new(),
        attempts: BTreeMap::new(),
        dumped_outages: Vec::new(),
        gpu_free: vec![0; cfg.gpus],
        gpu_obs: (0..cfg.gpus)
            .map(|g| Collector::new(telemetry_cfg, Track::Cluster(g as u32)))
            .collect(),
        obs: Collector::new(telemetry_cfg, Track::Serve),
        traces: BTreeMap::new(),
        trace_jobs: cfg.trace.spans_enabled(),
        slos: SLO_KINDS
            .into_iter()
            .zip(slo_specs)
            .map(|(kind, spec)| (kind, SloTracker::new(spec)))
            .collect(),
        alerts: Vec::new(),
        ssim_floor_x1000: cfg.slo.ssim_floor_x1000,
        mean_service,
        now: 0,
        stats: ServeStats {
            submitted: jobs.len() as u64,
            ..ServeStats::default()
        },
        completed: Vec::with_capacity(jobs.len()),
        log: String::new(),
    };

    let mut next_arrival = 0usize;
    loop {
        // 1. Admit every arrival due by now, in arrival order; a full queue
        //    sheds the newcomer (admission never evicts a promise).
        while next_arrival < jobs.len() && jobs[next_arrival].arrival <= session.now {
            let job = jobs[next_arrival];
            next_arrival += 1;
            session.begin_trace(&job);
            match session.queue.offer(job) {
                Admission::Admitted(depth) => session.stats.queue_depth.record(depth as u64),
                Admission::Rejected(job) => session.shed(job),
            }
        }

        // 1b. Requeue every retry whose backoff has cooled down — the
        //     admission promise was made on first offer, so capacity does
        //     not apply.
        while let Some((&(due, id), _)) = session.retries.first_key_value() {
            if due > session.now {
                break;
            }
            if let Some(job) = session.retries.remove(&(due, id)) {
                // Re-check feasibility at requeue time: the admission
                // estimate went stale while the backoff cooled, and a
                // retry that can no longer meet its deadline is pure
                // load amplification — abandon it instead.
                if session.now.saturating_add(session.mean_service) > job.deadline {
                    let retries = session.attempts.remove(&id).unwrap_or(1).saturating_sub(1);
                    session.fail(job, session.now, retries);
                    continue;
                }
                if let Some(builder) = session.traces.get_mut(&id) {
                    builder.requeued(session.now);
                }
                let depth = session.queue.requeue(job);
                session.stats.queue_depth.record(depth as u64);
            }
        }

        // 2. Dispatch onto the lowest-indexed available GPU (idle,
        //    breaker not open), if any work waits.
        if !session.queue.is_empty() {
            let ready = (0..session.gpu_free.len()).find(|&g| session.gpu_available(g));
            if let Some(gpu) = ready {
                session.dispatch(gpu, setup)?;
                continue; // other GPUs may be available at the same cycle
            }
        }

        // 3. Advance the virtual clock to the next event: an arrival, a
        //    retry coming off backoff, or a GPU becoming available again
        //    (completion, hang-detector timeout, or breaker cooldown).
        let arrival = (next_arrival < jobs.len()).then(|| jobs[next_arrival].arrival);
        let retry_due = session.retries.keys().next().map(|&(due, _)| due);
        let availability = if session.queue.is_empty() {
            None
        } else {
            (0..session.gpu_free.len())
                .map(|g| session.gpu_next_free(g))
                .filter(|&t| t > session.now)
                .min()
        };
        match [arrival, retry_due, availability]
            .into_iter()
            .flatten()
            .min()
        {
            Some(t) => session.now = session.now.max(t),
            None => break, // no arrivals, no retries cooling, queue drained
        }
    }

    // Every admitted job must have terminated; anything still queued here
    // means the availability accounting livelocked — surface it as a
    // typed error rather than silently dropping contracts.
    if !(session.queue.is_empty() && session.retries.is_empty()) {
        return Err(ServeError::GpuUnavailable {
            gpu: 0,
            until: session.now,
        });
    }

    let Session {
        stats,
        completed,
        log,
        gpu_obs,
        obs,
        alerts,
        ..
    } = session;

    let mut telemetry = FrameTelemetry::new(cfg.trace, 0, format!("{base_policy:?}"), cfg.seed);
    for gpu in gpu_obs {
        telemetry.absorb(gpu);
    }
    telemetry.absorb(obs);
    telemetry
        .counters
        .insert("serve::submitted", stats.submitted);
    telemetry
        .counters
        .insert("serve::delivered", stats.delivered);
    telemetry.counters.insert("serve::shed", stats.shed);
    telemetry.counters.insert("serve::failed", stats.failed);
    telemetry
        .counters
        .insert("serve::deadline_misses", stats.deadline_misses);
    telemetry.counters.insert("serve::degrades", stats.degrades);
    telemetry.counters.insert("serve::batches", stats.batches);
    telemetry.counters.insert("serve::retries", stats.retries);
    telemetry.counters.insert("serve::hedges", stats.hedges);
    telemetry
        .counters
        .insert("serve::hedge_wins", stats.hedge_wins);
    telemetry
        .counters
        .insert("serve::breaker_opens", stats.breaker_opens);
    telemetry.counters.insert("serve::outages", stats.outages);
    telemetry
        .counters
        .insert("serve::straggles", stats.straggles);
    telemetry
        .counters
        .insert("serve::corrupt_frames", stats.corrupt_frames);
    if cfg.slo.enabled {
        telemetry
            .counters
            .insert("serve::slo_alerts", stats.slo_alerts);
    }
    telemetry
        .hists
        .insert("serve::queue_depth", stats.queue_depth);
    telemetry.hists.insert("serve::slack", stats.slack);
    telemetry
        .hists
        .insert("serve::latency_interactive", stats.latency[0]);
    telemetry
        .hists
        .insert("serve::latency_standard", stats.latency[1]);
    telemetry
        .hists
        .insert("serve::latency_batch", stats.latency[2]);

    Ok(ServeReport {
        stats,
        completed,
        log,
        alerts,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::Scenario;
    use crate::exec::SyntheticService;
    use crate::health::ResilienceConfig;

    fn cfg() -> ServeConfig {
        ServeConfig {
            clients: 4,
            jobs_per_client: 12,
            load: 1.0,
            gpus: 2,
            queue_capacity: 8,
            scenario: Scenario::Calm,
            ..ServeConfig::default()
        }
    }

    fn run(cfg: &ServeConfig) -> ServeReport {
        let mut service = SyntheticService::new(1_000_000, cfg.governor_steps);
        run_session(cfg, &mut service).expect("session runs")
    }

    fn conserved(s: &ServeStats) -> bool {
        s.delivered + s.shed + s.failed == s.submitted
    }

    #[test]
    fn every_job_terminates_exactly_once() {
        let report = run(&cfg());
        let s = &report.stats;
        assert_eq!(s.submitted, 48);
        assert_eq!(s.failed, 0, "calm sessions never fail jobs");
        assert!(conserved(s));
        assert_eq!(report.completed.len(), 48);
        let mut ids: Vec<u64> = report.completed.iter().map(|c| c.job.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 48, "no duplicate completions");
        assert_eq!(report.log.lines().count(), 48);
    }

    #[test]
    fn sessions_are_bit_identical() {
        let a = run(&cfg());
        let b = run(&cfg());
        assert_eq!(a.log, b.log);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.stats.makespan, b.stats.makespan);
        assert_eq!(a.chrome_trace(), b.chrome_trace());
    }

    #[test]
    fn serve_log_passes_the_schema_checker() {
        let report = run(&ServeConfig {
            load: 4.0, // force some sheds so both outcomes appear
            queue_capacity: 2,
            ..cfg()
        });
        let checked = patu_obs::schema::check_stream(&report.log).expect("all lines valid");
        assert_eq!(checked as u64, report.stats.submitted);
        assert!(report.stats.shed > 0, "4x load on a 2-deep queue sheds");
    }

    #[test]
    fn governor_cuts_misses_under_overload() {
        let overload = ServeConfig { load: 3.0, ..cfg() };
        let governed = run(&overload);
        let ungoverned = run(&ServeConfig {
            governor: false,
            ..overload
        });
        assert!(
            governed.stats.miss_rate() < ungoverned.stats.miss_rate(),
            "governed {} vs ungoverned {}",
            governed.stats.miss_rate(),
            ungoverned.stats.miss_rate()
        );
        assert!(governed.stats.degrades > 0, "quality was actually traded");
        assert!(
            governed.stats.mean_ssim() >= 0.88,
            "floor bounds the trade: {}",
            governed.stats.mean_ssim()
        );
        assert_eq!(ungoverned.stats.degrades, 0);
    }

    #[test]
    fn sheds_are_monotone_in_load() {
        let base = cfg();
        let mut last = 0u64;
        for load in [0.5, 2.0, 5.0] {
            let report = run(&ServeConfig {
                load,
                queue_capacity: 3,
                governor: false,
                ..base.clone()
            });
            assert!(
                report.stats.shed >= last,
                "shed at load {load}: {} < {last}",
                report.stats.shed
            );
            last = report.stats.shed;
        }
    }

    #[test]
    fn report_table_lists_every_tier() {
        let report = run(&cfg());
        let table = report.table();
        for tier in Tier::ALL {
            assert!(table.contains(tier.label()), "{table}");
        }
    }

    #[test]
    fn batching_amortizes_setup() {
        let batched = run(&ServeConfig {
            batch_max: 4,
            load: 2.0,
            ..cfg()
        });
        let unbatched = run(&ServeConfig {
            batch_max: 1,
            load: 2.0,
            ..cfg()
        });
        assert!(
            batched.stats.batches < unbatched.stats.batches,
            "same-scene jobs coalesce: {} vs {}",
            batched.stats.batches,
            unbatched.stats.batches
        );
        assert_eq!(
            batched.stats.delivered + batched.stats.shed,
            unbatched.stats.delivered + unbatched.stats.shed,
            "both modes account for every job"
        );
    }

    #[test]
    fn telemetry_records_spans_and_counters() {
        let report = run(&ServeConfig {
            trace: patu_obs::TraceLevel::Spans,
            ..cfg()
        });
        assert_eq!(
            report.telemetry.counters["serve::delivered"],
            report.stats.delivered
        );
        let stages: Vec<&str> = report
            .telemetry
            .stage_totals()
            .iter()
            .map(|&(n, _, _)| n)
            .collect();
        assert!(stages.contains(&"serve::job"), "stages: {stages:?}");
        assert!(stages.contains(&"serve::batch"));
        let trace = report.chrome_trace();
        assert!(trace.contains("serve::job"));
    }

    #[test]
    fn every_scenario_conserves_jobs_and_passes_the_schema() {
        for scenario in Scenario::ALL {
            let report = run(&ServeConfig {
                scenario,
                load: 1.5,
                ..cfg()
            });
            assert!(
                conserved(&report.stats),
                "{}: delivered {} + shed {} + failed {} != submitted {}",
                scenario.label(),
                report.stats.delivered,
                report.stats.shed,
                report.stats.failed,
                report.stats.submitted
            );
            let checked = patu_obs::schema::check_stream(&report.log).expect("valid lines");
            assert_eq!(
                checked as u64,
                report.stats.submitted,
                "{}",
                scenario.label()
            );
        }
    }

    #[test]
    fn chaos_sessions_replay_bit_identically() {
        for scenario in Scenario::CHAOS {
            let c = ServeConfig {
                scenario,
                load: 1.5,
                ..cfg()
            };
            let a = run(&c);
            let b = run(&c);
            assert_eq!(a.log, b.log, "{}", scenario.label());
            assert_eq!(a.completed, b.completed, "{}", scenario.label());
        }
    }

    #[test]
    fn flap_trips_breakers_and_dumps_postmortems() {
        let report = run(&ServeConfig {
            scenario: Scenario::SingleGpuFlap,
            jobs_per_client: 24,
            load: 1.5,
            ..cfg()
        });
        let s = &report.stats;
        assert!(s.outages > 0, "the flapping GPU was actually hit");
        assert!(s.retries > 0, "lost work was retried");
        assert!(
            s.breaker_opens > 0,
            "repeated crashes open the breaker: {s:?}"
        );
        assert_eq!(
            report.telemetry.dumps.len() as u64,
            s.outages,
            "one postmortem per distinct outage episode"
        );
        assert!(report
            .telemetry
            .dumps
            .iter()
            .all(|d| d.reason == "gpu_outage"));
        assert!(conserved(s));
    }

    #[test]
    fn resilience_beats_the_control_arm_under_transients() {
        let chaotic = ServeConfig {
            scenario: Scenario::SteadyTransients,
            jobs_per_client: 24,
            load: 1.2,
            ..cfg()
        };
        let on = run(&chaotic);
        let off = run(&ServeConfig {
            resilience: ResilienceConfig::disabled(),
            ..chaotic.clone()
        });
        assert!(
            off.stats.failed > 0,
            "without retries, transients fail jobs outright"
        );
        assert!(
            on.stats.violation_rate() < off.stats.violation_rate(),
            "resilience on {} vs off {}",
            on.stats.violation_rate(),
            off.stats.violation_rate()
        );
        assert!(on.stats.retries > 0);
        assert!(conserved(&on.stats) && conserved(&off.stats));
    }

    #[test]
    fn straggler_storm_stretches_and_hedges() {
        let report = run(&ServeConfig {
            scenario: Scenario::StragglerStorm,
            jobs_per_client: 24,
            load: 1.2,
            ..cfg()
        });
        let s = &report.stats;
        assert!(s.straggles > 0, "storm windows actually stretched work");
        assert!(s.hedges > 0, "at-risk interactive jobs were hedged");
        assert!(conserved(s));
        let hedged_deliveries = report
            .completed
            .iter()
            .filter(|c| c.outcome == Outcome::Delivered && c.hedged)
            .count();
        assert!(hedged_deliveries > 0, "some hedges delivered");
    }

    #[test]
    fn calm_sessions_never_hedge_or_retry() {
        let report = run(&ServeConfig { load: 2.0, ..cfg() });
        let s = &report.stats;
        assert_eq!(s.hedges, 0, "hedging stands down on a calm model");
        assert_eq!(s.retries, 0);
        assert_eq!(s.breaker_opens, 0);
        assert_eq!(s.outages, 0);
        assert_eq!(s.straggles, 0);
        assert_eq!(s.corrupt_frames, 0);
        assert!(report.telemetry.dumps.is_empty());
    }

    #[test]
    fn spans_trace_emits_a_well_formed_tree_per_job() {
        let report = run(&ServeConfig {
            trace: patu_obs::TraceLevel::Spans,
            scenario: Scenario::HalfPoolOutage,
            jobs_per_client: 24,
            load: 1.5,
            ..cfg()
        });
        // One "serve" line plus one schema-validated "trace" tree per job.
        let checked = patu_obs::schema::check_stream(&report.log).expect("valid lines");
        assert_eq!(checked as u64, report.stats.submitted * 2);
        let traces = report
            .log
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"trace\""))
            .count();
        assert_eq!(traces as u64, report.stats.submitted);
        assert!(report.stats.failed > 0, "the outage actually failed jobs");
        assert!(report.log.contains("serve::attempt::crashed"));
        assert!(report.log.contains("serve::retry_wait"));
        // Lifecycle spans land on the serve track and flow into GPU lanes.
        assert!(report.chrome_trace().contains("serve::lifecycle"));
    }

    #[test]
    fn counters_trace_emits_no_trace_lines() {
        let report = run(&cfg());
        assert!(!report.log.contains("\"type\":\"trace\""));
        assert_eq!(report.log.lines().count() as u64, report.stats.submitted);
    }

    #[test]
    fn half_pool_outage_burns_slo_budget_deterministically() {
        let c = ServeConfig {
            slo: patu_obs::SloOptions::default(),
            trace: patu_obs::TraceLevel::Spans,
            scenario: Scenario::HalfPoolOutage,
            // Enough terminals that the fast burn window (horizon/64)
            // holds its 8-sample minimum during the outage.
            jobs_per_client: 48,
            load: 1.5,
            ..cfg()
        };
        let a = run(&c);
        assert!(!a.alerts.is_empty(), "losing half the pool burns budget");
        assert_eq!(a.stats.slo_alerts, a.alerts.len() as u64);
        let b = run(&c);
        assert_eq!(a.alerts, b.alerts, "alert cycles are deterministic");
        // Alerts land in the log, the flight recorder, the event stream,
        // and the trace of the job whose observation tipped the burn.
        let slo_lines = a
            .log
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"slo\""))
            .count();
        assert_eq!(slo_lines, a.alerts.len());
        assert!(a.telemetry.dumps.iter().any(|d| d.reason == "slo_burn"));
        assert!(a.log.contains("\"slo_burns\":["));
        assert_eq!(
            a.telemetry.counters["serve::slo_alerts"],
            a.alerts.len() as u64
        );
        patu_obs::schema::check_stream(&a.log).expect("slo lines pass the schema");
    }

    #[test]
    fn calm_sessions_fire_no_slo_alerts() {
        let report = run(&ServeConfig {
            slo: patu_obs::SloOptions::default(),
            ..cfg()
        });
        assert!(report.alerts.is_empty(), "{:?}", report.alerts);
        assert_eq!(report.stats.slo_alerts, 0);
    }

    #[test]
    fn violation_rate_counts_all_contract_losses() {
        let s = ServeStats {
            submitted: 10,
            shed: 1,
            deadline_misses: 2,
            failed: 3,
            ..ServeStats::default()
        };
        assert!((s.violation_rate() - 0.6).abs() < 1e-12);
        assert!(
            (s.miss_rate() - 0.3).abs() < 1e-12,
            "miss_rate excludes failures"
        );
        assert_eq!(ServeStats::default().violation_rate(), 0.0);
    }
}
