//! Seeded open-loop workload generation: N clients submitting render jobs
//! on the virtual clock.
//!
//! Everything here is a pure function of [`ServeConfig`] and the calibrated
//! mean service time — arrivals are generated up front from per-client
//! [`DetRng`] streams (forked by client id, so adding a client never
//! perturbs another client's stream), merged in `(arrival, id)` order.
//! There is no wall clock anywhere; a "second" of traffic is measured in
//! simulated GPU cycles.
//!
//! This file is the registered reader of the `PATU_SERVE_CLIENTS`
//! environment knob (see `patu-lint`'s `ENV_KNOBS` table): the ambient
//! client count is read exactly once, here, and flows everywhere else as a
//! plain field.

use crate::chaos::{default_scenario, Scenario};
use crate::error::ServeError;
use crate::health::ResilienceConfig;
use crate::job::{Job, Tier};
use patu_gmath::DetRng;
use patu_gpu::FaultConfig;
use patu_obs::{SloOptions, TraceLevel};

/// Fallback client count when `PATU_SERVE_CLIENTS` is unset or invalid.
const DEFAULT_CLIENTS: usize = 8;

/// Resolves the default client count: the `PATU_SERVE_CLIENTS` environment
/// variable if set to a positive integer, else [`DEFAULT_CLIENTS`].
/// Explicit [`ServeConfig::clients`] assignments always win — this is only
/// the `Default` seed, mirroring how `PATU_THREADS` resolves.
pub fn default_clients() -> usize {
    // patu-lint: allow(knob-at-construction) — Default seed read once while the
    // session's ServeConfig is built; the client count flows down from there
    std::env::var("PATU_SERVE_CLIENTS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_CLIENTS)
}

/// Everything the serving subsystem needs to run one session.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Master seed for arrival streams and fault forks.
    pub seed: u64,
    /// Number of concurrent clients.
    pub clients: usize,
    /// Jobs each client submits over the session.
    pub jobs_per_client: usize,
    /// Scene names jobs draw from (see `patu_scenes::catalog`).
    pub scenes: Vec<String>,
    /// Render resolution for every job.
    pub resolution: (u32, u32),
    /// Frame indices are drawn from `0..frame_span` — small spans keep the
    /// render cache warm, mimicking clients watching the same content.
    pub frame_span: u32,
    /// Offered load relative to pool capacity: 1.0 means arrivals exactly
    /// saturate the GPUs at the base threshold; 2.0 is 2× overload.
    pub load: f64,
    /// Fixed-capacity PATU GPU pool size.
    pub gpus: usize,
    /// Admission queue capacity; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Maximum same-scene jobs dispatched as one batch.
    pub batch_max: usize,
    /// The quality knob the session starts from — also the governor's
    /// ceiling and the level degradation is reported against. The default
    /// is 1.0 (full quality): the serving contract is exact frames unless
    /// load pressure forces the governor to trade some SSIM away. Lowering
    /// θ has most of its cycle leverage in the upper range, so a ceiling
    /// near 1.0 is what gives the governor real throughput headroom.
    pub base_threshold: f64,
    /// Whether the quality governor closes the loop from queue pressure to
    /// the per-job threshold. Disabled, every job renders at
    /// [`ServeConfig::base_threshold`].
    pub governor: bool,
    /// The governor's quality floor — it never pushes the threshold below
    /// this, bounding how much SSIM can be traded away.
    pub governor_floor: f64,
    /// Quantization steps for governed thresholds (see
    /// `FilterPolicy::govern`); coarse grids cache better.
    pub governor_steps: u32,
    /// How hard queue pressure leans on the threshold: bias =
    /// `-pressure_gain × depth/capacity`.
    pub pressure_gain: f64,
    /// Scene-setup cost charged once per dispatched batch, as a fraction of
    /// the calibrated mean service time — what same-scene batching
    /// amortizes.
    pub setup_frac: f64,
    /// Fault injection forwarded into every render (disabled by default).
    pub faults: FaultConfig,
    /// The chaos scenario the session runs under — which GPU outage,
    /// straggler, and transient-failure script is in force. Defaults to
    /// `PATU_SERVE_SCENARIO` when set to a known label, else calm.
    pub scenario: Scenario,
    /// The resilience posture: retries, hedging, circuit breakers, and
    /// the brownout ladder. All on by default;
    /// [`ResilienceConfig::disabled`] is the chaos benchmarks' control
    /// arm.
    pub resilience: ResilienceConfig,
    /// Worker threads for batch rendering. `None` resolves `PATU_THREADS`,
    /// then available parallelism; outputs are bit-identical across all
    /// values.
    pub threads: Option<usize>,
    /// Telemetry level for serve spans/counters. At
    /// [`TraceLevel::Spans`] the session also emits one `"trace"` JSONL
    /// line per terminated job — its full causal lifecycle tree.
    pub trace: TraceLevel,
    /// SLO burn-rate tracking (see [`patu_obs::slo`]). Off by default so
    /// the serve log stays minimal; binaries that want the `PATU_SLO` knob
    /// resolve it via [`SloOptions::from_env`].
    pub slo: SloOptions,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            seed: 42,
            clients: default_clients(),
            jobs_per_client: 8,
            scenes: vec!["doom3".to_string(), "hl2".to_string()],
            resolution: (192, 144),
            frame_span: 3,
            load: 1.0,
            gpus: 2,
            queue_capacity: 16,
            batch_max: 4,
            base_threshold: 1.0,
            governor: true,
            governor_floor: 0.25,
            governor_steps: 8,
            pressure_gain: 1.0,
            setup_frac: 0.2,
            faults: FaultConfig::disabled(),
            scenario: default_scenario(),
            resilience: ResilienceConfig::default(),
            threads: None,
            trace: TraceLevel::Counters,
            slo: SloOptions::disabled(),
        }
    }
}

impl ServeConfig {
    /// Checks the configuration, reporting the first unusable knob as a
    /// typed error instead of panicking mid-session.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad = |what| Err(ServeError::InvalidConfig { what });
        if self.clients == 0 {
            return bad("clients must be >= 1");
        }
        if self.jobs_per_client == 0 {
            return bad("jobs_per_client must be >= 1");
        }
        if self.scenes.is_empty() {
            return bad("scenes must be non-empty");
        }
        if self.frame_span == 0 {
            return bad("frame_span must be >= 1");
        }
        if !(self.load.is_finite() && self.load > 0.0) {
            return bad("load must be finite and positive");
        }
        if self.gpus == 0 {
            return bad("gpus must be >= 1");
        }
        if self.queue_capacity == 0 {
            return bad("queue_capacity must be >= 1");
        }
        if self.batch_max == 0 {
            return bad("batch_max must be >= 1");
        }
        for (what, v) in [
            ("base_threshold must be in [0, 1]", self.base_threshold),
            ("governor_floor must be in [0, 1]", self.governor_floor),
        ] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return bad(what);
            }
        }
        if !(self.pressure_gain.is_finite() && self.pressure_gain >= 0.0) {
            return bad("pressure_gain must be finite and non-negative");
        }
        if !(self.setup_frac.is_finite() && (0.0..=1.0).contains(&self.setup_frac)) {
            return bad("setup_frac must be in [0, 1]");
        }
        self.resilience.validate()?;
        Ok(())
    }

    /// Total jobs the session will submit.
    pub fn total_jobs(&self) -> usize {
        self.clients * self.jobs_per_client
    }
}

/// Draws an exponential inter-arrival gap with the given mean, clamped to
/// `[1, 8 × mean]` so one unlucky draw cannot stall the whole stream.
fn exp_gap(rng: &mut DetRng, mean: f64) -> u64 {
    let u = rng.next_f64().min(1.0 - 1e-12);
    let x = -(1.0 - u).ln();
    (mean * x.min(8.0)).max(1.0) as u64
}

/// Draws a priority tier with a fixed 30/50/20 interactive/standard/batch
/// mix.
fn draw_tier(rng: &mut DetRng) -> Tier {
    let u = rng.next_f64();
    if u < 0.3 {
        Tier::Interactive
    } else if u < 0.8 {
        Tier::Standard
    } else {
        Tier::Batch
    }
}

/// Generates the merged arrival stream for a session.
///
/// `mean_service` is the calibrated cost of one job at the base threshold;
/// the per-client arrival rate is chosen so the aggregate offered load is
/// `cfg.load` times the pool's capacity. Deadlines are
/// `arrival + slack_factor(tier) × mean_service`. The result is sorted by
/// `(arrival, id)` with ids assigned in that order — a pure function of
/// `(cfg, mean_service)`.
pub fn generate(cfg: &ServeConfig, mean_service: u64) -> Vec<Job> {
    let mean_service = mean_service.max(1);
    // Aggregate arrival rate = load × gpus / mean_service, split evenly
    // across clients ⇒ each client's mean gap:
    let gap_mean =
        (cfg.clients as f64) * (mean_service as f64) / (cfg.load * cfg.gpus as f64).max(1e-9);

    let mut jobs: Vec<Job> = Vec::with_capacity(cfg.total_jobs());
    for client in 0..cfg.clients {
        let mut rng = DetRng::new(cfg.seed).fork(client as u64 + 1);
        let mut t = 0u64;
        for _ in 0..cfg.jobs_per_client {
            t = t.saturating_add(exp_gap(&mut rng, gap_mean));
            let tier = draw_tier(&mut rng);
            let scene = rng.range(cfg.scenes.len() as u64) as usize;
            let frame = rng.range(u64::from(cfg.frame_span)) as u32;
            jobs.push(Job {
                id: 0, // assigned after the merge sort below
                client: client as u32,
                tier,
                scene,
                frame,
                arrival: t,
                deadline: t.saturating_add(tier.slack_factor() * mean_service),
            });
        }
    }
    // Merge all client streams; (arrival, client, per-client order) is a
    // total order because each client's arrivals strictly increase.
    jobs.sort_by_key(|j| (j.arrival, j.client, j.deadline, j.frame));
    for (i, job) in jobs.iter_mut().enumerate() {
        job.id = i as u64;
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let cfg = ServeConfig {
            clients: 4,
            jobs_per_client: 10,
            ..ServeConfig::default()
        };
        let a = generate(&cfg, 1_000_000);
        let b = generate(&cfg, 1_000_000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().enumerate().all(|(i, j)| j.id == i as u64));
        assert!(a.iter().all(|j| j.deadline > j.arrival));
    }

    #[test]
    fn adding_a_client_leaves_existing_streams_untouched() {
        let small = ServeConfig {
            clients: 2,
            jobs_per_client: 5,
            ..ServeConfig::default()
        };
        let big = ServeConfig {
            clients: 3,
            ..small.clone()
        };
        // Same per-client gap mean so the streams are directly comparable.
        let a = generate(&small, 1_000_000);
        let b = generate(&big, 1_000_000);
        // Client rngs fork by id, but gap means differ (load is split across
        // clients), so compare the *fork* property instead: regenerate at
        // the same client count and check per-client draws are stable.
        let a2 = generate(&small, 1_000_000);
        assert_eq!(a, a2);
        assert_eq!(b.len(), 15);
    }

    #[test]
    fn higher_load_compresses_arrivals() {
        let base = ServeConfig {
            clients: 4,
            jobs_per_client: 10,
            ..ServeConfig::default()
        };
        let relaxed = generate(&base, 1_000_000);
        let overloaded = generate(
            &ServeConfig {
                load: 4.0,
                ..base.clone()
            },
            1_000_000,
        );
        let span = |jobs: &[Job]| jobs.last().map_or(0, |j| j.arrival);
        assert!(
            span(&overloaded) < span(&relaxed),
            "4x load packs the same jobs into less virtual time"
        );
    }

    #[test]
    fn tier_mix_covers_all_tiers() {
        let cfg = ServeConfig {
            clients: 8,
            jobs_per_client: 25,
            ..ServeConfig::default()
        };
        let jobs = generate(&cfg, 1_000_000);
        for tier in Tier::ALL {
            assert!(
                jobs.iter().any(|j| j.tier == tier),
                "200 draws must hit {tier:?}"
            );
        }
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let ok = ServeConfig::default();
        assert!(ok.validate().is_ok());
        for (mutate, _name) in [
            (
                Box::new(|c: &mut ServeConfig| c.clients = 0) as Box<dyn Fn(&mut ServeConfig)>,
                "clients",
            ),
            (Box::new(|c: &mut ServeConfig| c.gpus = 0), "gpus"),
            (Box::new(|c: &mut ServeConfig| c.load = f64::NAN), "load"),
            (Box::new(|c: &mut ServeConfig| c.load = -1.0), "load"),
            (
                Box::new(|c: &mut ServeConfig| c.queue_capacity = 0),
                "queue",
            ),
            (Box::new(|c: &mut ServeConfig| c.batch_max = 0), "batch"),
            (
                Box::new(|c: &mut ServeConfig| c.base_threshold = 1.5),
                "threshold",
            ),
            (
                Box::new(|c: &mut ServeConfig| c.governor_floor = f64::INFINITY),
                "floor",
            ),
            (Box::new(|c: &mut ServeConfig| c.scenes.clear()), "scenes"),
            (Box::new(|c: &mut ServeConfig| c.frame_span = 0), "span"),
            (
                Box::new(|c: &mut ServeConfig| c.pressure_gain = -2.0),
                "gain",
            ),
            (Box::new(|c: &mut ServeConfig| c.setup_frac = 3.0), "setup"),
        ] {
            let mut bad = ok.clone();
            mutate(&mut bad);
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn default_clients_is_positive() {
        assert!(default_clients() >= 1);
    }
}
