//! The quality governor: queue pressure in, quantized thresholds out.
//!
//! This closes the loop the ISSUE's serving layer needs: the
//! [`ThresholdController`] already steers the AF-SSIM threshold toward a
//! per-frame cycle budget; the governor overlays *system-level* pressure on
//! top via [`ThresholdController::set_external_bias`] — bias
//! `= -pressure_gain × queue_depth/capacity` — and snaps the composed
//! threshold onto a small grid with [`FilterPolicy::govern`], so overload
//! trades SSIM for throughput in a handful of cacheable steps instead of a
//! continuum of distinct render configurations.
//!
//! The failure domain adds a second, independent lever: the **brownout
//! ladder**. When GPUs drop out (outage windows, open circuit breakers),
//! the healthy-capacity fraction is quantized onto quarter rungs and fed
//! through [`ThresholdController::set_capacity_bias`], composing
//! additively with queue pressure. Losing capacity therefore degrades
//! quality in the same ordered, cache-friendly steps as overload does —
//! never by dropping contracts first.

use patu_core::FilterPolicy;
use patu_sim::ThresholdController;

/// The serving layer's outer quality controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityGovernor {
    controller: ThresholdController,
    base: FilterPolicy,
    steps: u32,
    pressure_gain: f64,
    capacity_bias: f64,
    enabled: bool,
}

impl QualityGovernor {
    /// A governor steering `base` (whose threshold seeds the controller)
    /// toward `target_cycles` per job, never dropping below `floor` and
    /// never rising above the base threshold — the governor only ever
    /// *degrades* quality; it cannot spend slack buying quality the client
    /// did not ask for (which would inflate service times and miss
    /// deadlines the ungoverned control meets).
    ///
    /// `steps` is the quantization grid (sanitized to at least 1 by
    /// [`FilterPolicy::govern`]); `pressure_gain` scales how hard queue
    /// pressure leans on the knob. A disabled governor always returns
    /// `base` unchanged.
    pub fn new(
        base: FilterPolicy,
        target_cycles: u64,
        floor: f64,
        steps: u32,
        pressure_gain: f64,
        enabled: bool,
    ) -> QualityGovernor {
        let start = base.threshold().unwrap_or(1.0);
        let controller =
            ThresholdController::new(target_cycles, start).with_bounds(floor.min(start), start);
        QualityGovernor {
            controller,
            base,
            steps,
            pressure_gain: if pressure_gain.is_finite() {
                pressure_gain.max(0.0)
            } else {
                0.0
            },
            capacity_bias: 0.0,
            enabled,
        }
    }

    /// Feeds the brownout ladder: quantizes the *lost* capacity fraction
    /// (`1 - healthy_fraction`) onto quarter rungs and arms a bias of
    /// `-gain × rung`, applied on the next [`QualityGovernor::policy_for`]
    /// call via [`ThresholdController::set_capacity_bias`]. Rung
    /// quantization keeps degradation quality-ordered: a flapping GPU
    /// walks the threshold down a discrete ladder instead of jittering it
    /// continuously.
    pub fn set_capacity_fraction(&mut self, healthy_fraction: f64, gain: f64) {
        let healthy = if healthy_fraction.is_finite() {
            healthy_fraction.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let gain = if gain.is_finite() { gain.max(0.0) } else { 0.0 };
        let rung = ((1.0 - healthy) * 4.0).ceil() / 4.0;
        self.capacity_bias = -gain * rung;
    }

    /// The currently armed brownout bias (0 when the pool is healthy).
    pub fn capacity_bias(&self) -> f64 {
        self.capacity_bias
    }

    /// Whether the loop is closed.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The policy for the next dispatch, given the queue state. Updates the
    /// external bias from pressure (`depth/capacity`), then quantizes the
    /// biased threshold. With the governor disabled this is always the base
    /// policy — the control experiment.
    pub fn policy_for(&mut self, depth: usize, capacity: usize) -> FilterPolicy {
        if !self.enabled {
            return self.base;
        }
        let pressure = depth as f64 / capacity.max(1) as f64;
        self.controller
            .set_external_bias(-self.pressure_gain * pressure);
        self.controller.set_capacity_bias(self.capacity_bias);
        self.base.govern(self.controller.threshold(), self.steps)
    }

    /// Feeds back one job's observed service cycles, letting the inner
    /// proportional term adapt to how expensive frames actually are.
    pub fn observe(&mut self, service_cycles: u64) {
        if self.enabled {
            self.controller.observe(service_cycles);
        }
    }

    /// The effective threshold a policy from [`QualityGovernor::policy_for`]
    /// carries (1.0 for fixed policies, which have no knob).
    pub fn effective_threshold(policy: &FilterPolicy) -> f64 {
        policy.threshold().unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patu(t: f64) -> FilterPolicy {
        FilterPolicy::Patu { threshold: t }
    }

    #[test]
    fn disabled_governor_is_the_identity() {
        let mut g = QualityGovernor::new(patu(0.4), 1_000_000, 0.2, 8, 1.0, false);
        assert!(!g.is_enabled());
        for depth in [0, 8, 16] {
            assert_eq!(g.policy_for(depth, 16), patu(0.4));
        }
        g.observe(10_000_000);
        assert_eq!(g.policy_for(16, 16), patu(0.4));
    }

    #[test]
    fn pressure_lowers_the_threshold_monotonically() {
        let mut g = QualityGovernor::new(patu(0.5), 1_000_000, 0.0, 16, 0.5, true);
        let idle = QualityGovernor::effective_threshold(&g.policy_for(0, 16));
        let half = QualityGovernor::effective_threshold(&g.policy_for(8, 16));
        let full = QualityGovernor::effective_threshold(&g.policy_for(16, 16));
        assert!(idle > half, "idle {idle} vs half {half}");
        assert!(half > full, "half {half} vs full {full}");
    }

    #[test]
    fn floor_bounds_the_degradation() {
        let mut g = QualityGovernor::new(patu(0.5), 1_000_000, 0.25, 8, 5.0, true);
        let t = QualityGovernor::effective_threshold(&g.policy_for(64, 16));
        assert!(t >= 0.25 - 1e-12, "floor holds under extreme pressure: {t}");
    }

    #[test]
    fn output_is_quantized() {
        let mut g = QualityGovernor::new(patu(0.5), 1_000_000, 0.0, 4, 1.0, true);
        for depth in 0..=16 {
            let t = QualityGovernor::effective_threshold(&g.policy_for(depth, 16));
            let snapped = (t * 4.0).round() / 4.0;
            assert!((t - snapped).abs() < 1e-12, "t {t} sits on the 4-grid");
        }
    }

    #[test]
    fn brownout_ladder_lowers_quality_in_rungs() {
        let mut g = QualityGovernor::new(patu(0.8), 1_000_000, 0.0, 64, 0.0, true);
        let healthy = QualityGovernor::effective_threshold(&g.policy_for(0, 16));
        g.set_capacity_fraction(0.5, 0.4);
        let brown = QualityGovernor::effective_threshold(&g.policy_for(0, 16));
        assert!(brown < healthy, "lost capacity degrades quality: {brown}");
        // Rung quantization: 60% and 70% healthy share the half-lost rung.
        g.set_capacity_fraction(0.6, 0.4);
        let a = QualityGovernor::effective_threshold(&g.policy_for(0, 16));
        g.set_capacity_fraction(0.7, 0.4);
        let b = QualityGovernor::effective_threshold(&g.policy_for(0, 16));
        assert!((a - b).abs() < 1e-12, "same rung, same threshold");
        g.set_capacity_fraction(1.0, 0.4);
        let restored = QualityGovernor::effective_threshold(&g.policy_for(0, 16));
        assert!(
            (restored - healthy).abs() < 1e-12,
            "recovery restores quality"
        );
        assert_eq!(g.capacity_bias(), 0.0);
        g.set_capacity_fraction(f64::NAN, 0.4);
        assert_eq!(g.capacity_bias(), 0.0, "NaN fraction reads as healthy");
    }

    #[test]
    fn brownout_composes_with_queue_pressure() {
        let mut g = QualityGovernor::new(patu(0.8), 1_000_000, 0.0, 64, 0.5, true);
        g.set_capacity_fraction(0.5, 0.4);
        let brown_idle = QualityGovernor::effective_threshold(&g.policy_for(0, 16));
        let brown_busy = QualityGovernor::effective_threshold(&g.policy_for(16, 16));
        assert!(
            brown_busy < brown_idle,
            "pressure still bites under brownout: {brown_busy} vs {brown_idle}"
        );
    }

    #[test]
    fn observe_adapts_the_inner_term() {
        let mut g = QualityGovernor::new(patu(0.8), 1_000_000, 0.0, 64, 0.0, true);
        let before = QualityGovernor::effective_threshold(&g.policy_for(0, 16));
        for _ in 0..10 {
            g.observe(3_000_000); // persistently 3× over budget
        }
        let after = QualityGovernor::effective_threshold(&g.policy_for(0, 16));
        assert!(after < before, "over-budget service lowers quality");
    }
}
