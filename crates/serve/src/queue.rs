//! The admission-controlled bounded queue.
//!
//! Ordering is EDF with priority tiers: the queue is a `BTreeMap` keyed by
//! `(tier, deadline, id)`, so `pop` is the urgent head and iteration order
//! is deterministic by construction (no hash maps anywhere). Admission is a
//! hard capacity check — the backpressure signal the quality governor and
//! the shed counters both read.

use crate::job::Job;
use std::collections::BTreeMap;

/// What [`AdmissionQueue::offer`] did with an arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueued; the queue depth after admission is attached.
    Admitted(usize),
    /// Rejected: the queue was at capacity. The job is returned to the
    /// caller to record as shed.
    Rejected(Job),
}

/// A bounded priority queue of pending jobs.
#[derive(Debug, Clone, Default)]
pub struct AdmissionQueue {
    capacity: usize,
    jobs: BTreeMap<(u8, u64, u64), Job>,
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` jobs.
    pub fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            capacity: capacity.max(1),
            jobs: BTreeMap::new(),
        }
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queue pressure in `[0, 1]`: depth over capacity.
    pub fn pressure(&self) -> f64 {
        self.jobs.len() as f64 / self.capacity as f64
    }

    /// Offers an arrival: admitted if there is room, rejected (returned)
    /// otherwise. Admission never evicts — a queued job is a promise.
    pub fn offer(&mut self, job: Job) -> Admission {
        if self.jobs.len() >= self.capacity {
            return Admission::Rejected(job);
        }
        self.jobs.insert(job.key(), job);
        Admission::Admitted(self.jobs.len())
    }

    /// Removes and returns the most urgent job: lowest `(tier, deadline,
    /// id)`.
    pub fn pop(&mut self) -> Option<Job> {
        let key = *self.jobs.keys().next()?;
        self.jobs.remove(&key)
    }

    /// Re-admits a previously admitted job — a retry re-entering the
    /// queue. Capacity is deliberately not enforced: the admission
    /// promise was made when the job was first offered, and shedding a
    /// retry would double-count the client's request. Returns the depth
    /// after insertion.
    pub fn requeue(&mut self, job: Job) -> usize {
        self.jobs.insert(job.key(), job);
        self.jobs.len()
    }

    /// Removes and returns up to `max` additional queued jobs rendering the
    /// same scene as `head`, in EDF order — the same-scene batch that
    /// amortizes scene setup. `head` itself is not in the queue any more.
    pub fn take_same_scene(&mut self, head: &Job, max: usize) -> Vec<Job> {
        let keys: Vec<(u8, u64, u64)> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.scene == head.scene)
            .take(max)
            .map(|(k, _)| *k)
            .collect();
        keys.iter().filter_map(|k| self.jobs.remove(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Tier;

    fn job(id: u64, tier: Tier, deadline: u64, scene: usize) -> Job {
        Job {
            id,
            client: 0,
            tier,
            scene,
            frame: 0,
            arrival: 0,
            deadline,
        }
    }

    #[test]
    fn pops_edf_within_tier_priority() {
        let mut q = AdmissionQueue::new(8);
        q.offer(job(1, Tier::Batch, 10, 0));
        q.offer(job(2, Tier::Standard, 500, 0));
        q.offer(job(3, Tier::Standard, 100, 0));
        q.offer(job(4, Tier::Interactive, 900, 0));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.id).collect();
        assert_eq!(order, vec![4, 3, 2, 1], "tier first, then deadline");
        assert!(q.is_empty());
    }

    #[test]
    fn rejects_when_full_without_evicting() {
        let mut q = AdmissionQueue::new(2);
        assert_eq!(
            q.offer(job(1, Tier::Standard, 10, 0)),
            Admission::Admitted(1)
        );
        assert_eq!(
            q.offer(job(2, Tier::Standard, 20, 0)),
            Admission::Admitted(2)
        );
        let urgent = job(3, Tier::Interactive, 1, 0);
        assert_eq!(q.offer(urgent), Admission::Rejected(urgent));
        assert_eq!(q.depth(), 2, "admission never evicts");
        assert!((q.pressure() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_scene_batch_respects_edf_and_max() {
        let mut q = AdmissionQueue::new(8);
        q.offer(job(1, Tier::Standard, 100, 7));
        q.offer(job(2, Tier::Standard, 50, 7));
        q.offer(job(3, Tier::Standard, 75, 2));
        q.offer(job(4, Tier::Batch, 10, 7));
        let head = q.pop().expect("head");
        assert_eq!(head.id, 2, "EDF head");
        let batch = q.take_same_scene(&head, 1);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, 1, "same scene, next in EDF order");
        assert_eq!(q.depth(), 2, "other-scene and over-max jobs remain");
    }

    #[test]
    fn requeue_bypasses_capacity_and_keeps_edf_order() {
        let mut q = AdmissionQueue::new(1);
        assert!(matches!(
            q.offer(job(1, Tier::Standard, 100, 0)),
            Admission::Admitted(1)
        ));
        let retry = job(2, Tier::Interactive, 50, 0);
        assert_eq!(q.requeue(retry), 2, "a retry is never shed");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop().map(|j| j.id), Some(2), "retry pops in EDF order");
        assert_eq!(q.pop().map(|j| j.id), Some(1));
    }

    #[test]
    fn zero_capacity_sanitizes_to_one() {
        let mut q = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(matches!(
            q.offer(job(1, Tier::Standard, 5, 0)),
            Admission::Admitted(1)
        ));
    }
}
