//! patu-serve: a deterministic frame-serving subsystem on top of the PATU
//! simulator.
//!
//! The crate models `N` concurrent clients submitting render jobs (scene +
//! frame + deadline + priority tier) against a fixed-capacity pool of PATU
//! GPUs, entirely on a **virtual clock in simulated GPU cycles** — no wall
//! time anywhere, so every session is bit-identical across runs, machines
//! and `PATU_THREADS` settings. The pieces:
//!
//! - [`workload`] — seeded open-loop traffic generation (`DetRng`-driven
//!   inter-arrival gaps, scene mix, tier draws, deadline assignment) and the
//!   [`ServeConfig`] knobs, including the `PATU_SERVE_CLIENTS` env override.
//! - [`queue`] — the admission-controlled bounded EDF queue whose depth is
//!   both the backpressure signal and the shed trigger.
//! - [`governor`] — the load-adaptive quality loop: queue pressure biases a
//!   [`patu_sim::ThresholdController`], and the composed threshold is
//!   quantized by `FilterPolicy::govern` into a small set of cacheable
//!   render configurations.
//! - [`exec`] — the [`FrameService`] boundary: the real
//!   [`SimFrameService`] renders through `patu_sim` (baseline SSIM
//!   references, per-key render cache, FNV-1a image hashes as bit-identity
//!   witnesses) and the cheap [`SyntheticService`] drives scheduler tests.
//! - [`health`] — the failure domain: per-GPU outage and straggle
//!   [`Episode`] scripts, hash-drawn transient faults, and the resilience
//!   primitives ([`RetryPolicy`], [`CircuitBreaker`], [`HedgeConfig`],
//!   [`ResilienceConfig`]).
//! - [`chaos`] — named, fully-seeded [`Scenario`] scripts (single-GPU
//!   flap, correlated half-pool outage, straggler storm…), including the
//!   `PATU_SERVE_SCENARIO` env override.
//! - [`server`] — the discrete-event loop tying it together, producing a
//!   [`ServeReport`]: stats, a schema-checked JSONL serve log, and
//!   Chrome-traceable telemetry with per-GPU outage postmortems.
//!
//! Quickstart:
//!
//! ```
//! use patu_serve::{run_session, ServeConfig, SimFrameService};
//!
//! let cfg = ServeConfig {
//!     clients: 2,
//!     jobs_per_client: 3,
//!     resolution: (96, 64),
//!     scenes: vec!["doom3".to_string()],
//!     ..ServeConfig::default()
//! };
//! let mut service = SimFrameService::new(&cfg).unwrap();
//! let report = run_session(&cfg, &mut service).unwrap();
//! assert_eq!(
//!     report.stats.delivered + report.stats.shed + report.stats.failed,
//!     report.stats.submitted
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod error;
pub mod exec;
pub mod governor;
pub mod health;
pub mod job;
pub mod queue;
pub mod server;
mod trace;
pub mod workload;

pub use chaos::{default_scenario, Scenario};
pub use error::ServeError;
pub use exec::{FrameService, RenderKey, ServedFrame, SimFrameService, SyntheticService};
pub use governor::QualityGovernor;
pub use health::{
    BreakerConfig, BreakerState, CircuitBreaker, Episode, EpisodeKind, HealthModel, HedgeConfig,
    ResilienceConfig, RetryPolicy,
};
pub use job::{CompletedJob, Job, Outcome, Tier};
pub use queue::{Admission, AdmissionQueue};
pub use server::{run_session, ServeReport, ServeStats};
pub use workload::{generate, ServeConfig};
