//! Named chaos scenarios: fully-seeded failure scripts on the virtual
//! clock.
//!
//! A [`Scenario`] is a recipe that expands into a [`HealthModel`] given
//! the pool size, the calibrated mean service time, and the session
//! horizon. Every draw comes from a `DetRng` stream forked from the
//! scenario seed, so the same scenario at the same seed produces the same
//! outages, the same stragglers, and the same transient draws — on any
//! thread count. That is what makes a chaos run a *regression test*
//! rather than a dice roll.
//!
//! This file is the registered reader of the `PATU_SERVE_SCENARIO`
//! environment knob (see `patu-lint`'s `ENV_KNOBS` table): the ambient
//! scenario name is read exactly once, here, and flows everywhere else as
//! a plain [`ServeConfig::scenario`](crate::ServeConfig) field. Unset or
//! unrecognized names fall back to [`Scenario::Calm`].

use crate::exec::fnv1a;
use crate::health::{Episode, EpisodeKind, HealthModel};
use patu_gmath::DetRng;

/// A named, fully-seeded failure script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No failures of any kind — the pre-chaos serve semantics.
    Calm,
    /// A background drizzle: every attempt carries a transient-failure
    /// chance, and each GPU drifts through mild 1.5x straggle windows.
    SteadyTransients,
    /// GPU 0 flaps: short periodic outages with drawn spacing, killing
    /// whatever it was running. The classic flaky-host postmortem.
    SingleGpuFlap,
    /// Half the pool drops out for a correlated mid-session window — the
    /// acceptance scenario for the brownout ladder.
    HalfPoolOutage,
    /// Every GPU takes a staggered 3x slowdown window; nothing crashes,
    /// everything is late. Hedging's home turf.
    StragglerStorm,
}

impl Scenario {
    /// Every scenario, calm first.
    pub const ALL: [Scenario; 5] = [
        Scenario::Calm,
        Scenario::SteadyTransients,
        Scenario::SingleGpuFlap,
        Scenario::HalfPoolOutage,
        Scenario::StragglerStorm,
    ];

    /// The scenarios that actually break things.
    pub const CHAOS: [Scenario; 4] = [
        Scenario::SteadyTransients,
        Scenario::SingleGpuFlap,
        Scenario::HalfPoolOutage,
        Scenario::StragglerStorm,
    ];

    /// Stable name, used in JSON artifacts and `PATU_SERVE_SCENARIO`.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Calm => "calm",
            Scenario::SteadyTransients => "steady_transients",
            Scenario::SingleGpuFlap => "single_gpu_flap",
            Scenario::HalfPoolOutage => "half_pool_outage",
            Scenario::StragglerStorm => "straggler_storm",
        }
    }

    /// Parses a scenario name as written by [`Scenario::label`].
    pub fn parse(name: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.label() == name.trim())
    }

    /// The per-attempt transient-failure probability the scenario runs at.
    pub fn transient_rate(self) -> f64 {
        match self {
            Scenario::Calm => 0.0,
            Scenario::SteadyTransients => 0.08,
            _ => 0.02,
        }
    }

    /// Expands the scenario into a concrete per-GPU health script.
    ///
    /// `horizon` is the expected session makespan in cycles — windows are
    /// placed relative to it so "mid-session" means mid-session at any
    /// load. All draws fork from `seed`; GPU scripts fork per GPU index
    /// so pool size never perturbs another GPU's episodes.
    pub fn model(self, gpus: usize, mean_service: u64, horizon: u64, seed: u64) -> HealthModel {
        let ms = mean_service.max(1);
        let horizon = horizon.max(8 * ms);
        let root = DetRng::new(seed ^ 0x0063_6861_6f73).fork(fnv1a(0, self.label().bytes()));
        let mut per_gpu: Vec<Vec<Episode>> = vec![Vec::new(); gpus];
        match self {
            Scenario::Calm => {}
            Scenario::SteadyTransients => {
                // Mild straggle windows drifting across each GPU.
                for (g, episodes) in per_gpu.iter_mut().enumerate() {
                    let mut rng = root.fork(1).fork(g as u64);
                    let mut t = (ms * 2).saturating_mul(1 + g as u64);
                    while t < horizon {
                        let dur = 2 * ms + rng.range(2 * ms);
                        episodes.push(Episode {
                            start: t,
                            end: t + dur,
                            kind: EpisodeKind::Straggle { factor: 1.5 },
                        });
                        t = t + dur + 6 * ms + rng.range(6 * ms);
                    }
                }
            }
            Scenario::SingleGpuFlap => {
                let Some(episodes) = per_gpu.first_mut() else {
                    return HealthModel::new(per_gpu, self.transient_rate(), seed);
                };
                let mut rng = root.fork(2);
                let mut t = 3 * ms + rng.range(2 * ms);
                while t < horizon {
                    let down = ms + rng.range(2 * ms);
                    episodes.push(Episode {
                        start: t,
                        end: t + down,
                        kind: EpisodeKind::Outage,
                    });
                    t = t + down + 6 * ms + rng.range(4 * ms);
                }
            }
            Scenario::HalfPoolOutage => {
                // A correlated blast radius: the low half of the pool
                // shares one mid-session outage window.
                let mut rng = root.fork(3);
                let start = horizon / 20 * 7 + rng.range(horizon / 20);
                let end = start + horizon / 20 * 4 + rng.range(horizon / 20);
                for episodes in per_gpu.iter_mut().take(gpus.div_ceil(2)) {
                    episodes.push(Episode {
                        start,
                        end,
                        kind: EpisodeKind::Outage,
                    });
                }
            }
            Scenario::StragglerStorm => {
                // Staggered heavy-slowdown windows covering the middle
                // half of the session, one per GPU.
                for (g, episodes) in per_gpu.iter_mut().enumerate() {
                    let mut rng = root.fork(4).fork(g as u64);
                    let stagger = if gpus == 0 {
                        0
                    } else {
                        horizon / 4 / gpus as u64 * g as u64
                    };
                    let start = horizon / 5 + stagger + rng.range(ms);
                    let dur = horizon / 5 * 2 + rng.range(horizon / 10);
                    episodes.push(Episode {
                        start,
                        end: start + dur,
                        kind: EpisodeKind::Straggle { factor: 3.0 },
                    });
                }
            }
        }
        HealthModel::new(per_gpu, self.transient_rate(), seed)
    }
}

/// Resolves the default scenario: `PATU_SERVE_SCENARIO` if set to a known
/// label, else [`Scenario::Calm`]. Explicit `ServeConfig::scenario`
/// assignments always win — this only seeds `Default`, mirroring
/// `PATU_SERVE_CLIENTS`.
pub fn default_scenario() -> Scenario {
    // patu-lint: allow(knob-at-construction) — Default seed read once while the
    // session's ServeConfig is built; the scenario value flows down from there
    std::env::var("PATU_SERVE_SCENARIO")
        .ok()
        .and_then(|v| Scenario::parse(&v))
        .unwrap_or(Scenario::Calm)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;
    const HORIZON: u64 = 40 * MS;

    #[test]
    fn labels_round_trip_through_parse() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::parse(s.label()), Some(s));
        }
        assert_eq!(Scenario::parse(" calm "), Some(Scenario::Calm));
        assert_eq!(Scenario::parse("nope"), None);
        assert_eq!(Scenario::parse(""), None);
    }

    #[test]
    fn calm_expands_to_a_healthy_pool() {
        let m = Scenario::Calm.model(4, MS, HORIZON, 1);
        assert!(m.is_calm(), "no episodes, no transients");
        assert_eq!(m.gpus(), 4);
        assert_eq!(m.transient_rate(), 0.0);
        assert!((0..4).all(|g| m.episodes(g).is_empty()));
    }

    #[test]
    fn models_are_seed_deterministic() {
        for s in Scenario::ALL {
            let a = s.model(4, MS, HORIZON, 1207);
            let b = s.model(4, MS, HORIZON, 1207);
            assert_eq!(a, b, "{} must replay", s.label());
            if s != Scenario::Calm {
                let c = s.model(4, MS, HORIZON, 1208);
                assert_ne!(a, c, "{} must vary with seed", s.label());
            }
        }
    }

    #[test]
    fn flap_hits_only_gpu_zero() {
        let m = Scenario::SingleGpuFlap.model(4, MS, HORIZON, 7);
        assert!(!m.episodes(0).is_empty(), "gpu 0 flaps");
        assert!(m.episodes(0).len() >= 2, "flapping means repeatedly");
        for g in 1..4 {
            assert!(m.episodes(g).is_empty(), "gpu {g} stays healthy");
        }
        assert!(m
            .episodes(0)
            .iter()
            .all(|e| matches!(e.kind, EpisodeKind::Outage)));
    }

    #[test]
    fn half_pool_outage_is_correlated_and_mid_session() {
        let m = Scenario::HalfPoolOutage.model(4, MS, HORIZON, 7);
        let down: Vec<&[Episode]> = (0..4).map(|g| m.episodes(g)).collect();
        assert_eq!(down[0].len(), 1);
        assert_eq!(down[0], down[1], "shared window: correlated failure");
        assert!(
            down[2].is_empty() && down[3].is_empty(),
            "other half survives"
        );
        let e = down[0][0];
        assert!(
            e.start > HORIZON / 4 && e.end < HORIZON,
            "mid-session window"
        );
        // Odd pools round the blast radius up.
        let m5 = Scenario::HalfPoolOutage.model(5, MS, HORIZON, 7);
        assert_eq!((0..5).filter(|&g| !m5.episodes(g).is_empty()).count(), 3);
    }

    #[test]
    fn straggler_storm_slows_every_gpu() {
        let m = Scenario::StragglerStorm.model(3, MS, HORIZON, 7);
        for g in 0..3 {
            let eps = m.episodes(g);
            assert_eq!(eps.len(), 1, "one window per gpu");
            assert!(
                matches!(eps[0].kind, EpisodeKind::Straggle { factor } if factor == 3.0),
                "heavy slowdown"
            );
        }
        let starts: Vec<u64> = (0..3).map(|g| m.episodes(g)[0].start).collect();
        assert!(
            starts[0] < starts[1] && starts[1] < starts[2],
            "staggered onsets"
        );
    }

    #[test]
    fn steady_transients_carries_the_highest_rate() {
        let m = Scenario::SteadyTransients.model(2, MS, HORIZON, 7);
        assert_eq!(m.transient_rate(), 0.08);
        for g in 0..2 {
            assert!(!m.episodes(g).is_empty(), "gpu {g} drifts");
            assert!(m
                .episodes(g)
                .iter()
                .all(|e| matches!(e.kind, EpisodeKind::Straggle { factor } if factor == 1.5)));
        }
    }

    #[test]
    fn degenerate_pools_and_horizons_stay_safe() {
        for s in Scenario::ALL {
            let m = s.model(0, MS, HORIZON, 7);
            assert_eq!(m.gpus(), 0);
            // Tiny horizon is clamped so scripts still terminate.
            let m = s.model(2, MS, 0, 7);
            assert_eq!(m.gpus(), 2);
            let m = s.model(2, 0, HORIZON, 7);
            assert_eq!(m.gpus(), 2);
        }
    }
}
