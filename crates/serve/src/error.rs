//! The serving layer's typed error, extending the `GpuError` →
//! `PatuError` → `SimError` chain one level up the stack.

use patu_sim::SimError;
use std::fmt;

/// Errors raised while configuring or running the frame-serving subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The underlying simulator rejected a render (bad policy, workload,
    /// cache geometry…).
    Sim(SimError),
    /// The serve configuration is unusable as given.
    InvalidConfig {
        /// Which knob was wrong.
        what: &'static str,
    },
    /// A scene index escaped the configured scene list — an internal
    /// invariant violation surfaced as data instead of a panic.
    UnknownScene {
        /// The out-of-range index.
        index: usize,
        /// How many scenes the service actually holds.
        scenes: usize,
    },
    /// A dispatch targeted a GPU that cannot take work right now (out of
    /// range, busy, in an outage window, or breaker-blocked) — the typed
    /// replacement for what used to be an index/invariant panic path.
    GpuUnavailable {
        /// The GPU that was targeted.
        gpu: usize,
        /// Earliest cycle it could take work again (0 when unknown, e.g.
        /// an out-of-range index).
        until: u64,
    },
    /// A failing job ran out of retry budget, or no remaining retry could
    /// finish before its deadline.
    RetriesExhausted {
        /// The job that gave up.
        job: u64,
        /// Retries actually spent before giving up.
        retries: u32,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Sim(e) => write!(f, "serve render: {e}"),
            ServeError::InvalidConfig { what } => {
                write!(f, "invalid serve configuration: {what}")
            }
            ServeError::UnknownScene { index, scenes } => {
                write!(f, "scene index {index} out of range (have {scenes})")
            }
            ServeError::GpuUnavailable { gpu, until } => {
                write!(f, "gpu {gpu} unavailable until cycle {until}")
            }
            ServeError::RetriesExhausted { job, retries } => {
                write!(
                    f,
                    "job {job} exhausted its retry budget after {retries} retries"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> ServeError {
        ServeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_chain_readably() {
        let e = ServeError::InvalidConfig { what: "gpus" };
        assert!(e.to_string().contains("gpus"));
        let e = ServeError::UnknownScene {
            index: 9,
            scenes: 2,
        };
        assert!(e.to_string().contains('9'));
        let e = ServeError::GpuUnavailable { gpu: 3, until: 77 };
        assert!(e.to_string().contains('3') && e.to_string().contains("77"));
        let e = ServeError::RetriesExhausted {
            job: 12,
            retries: 2,
        };
        assert!(e.to_string().contains("12") && e.to_string().contains("retry"));
    }
}
