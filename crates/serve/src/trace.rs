//! Causal per-job trace trees: the full lifecycle of one render job —
//! admission, queue waits, every dispatch attempt (including hedges,
//! corrupt frames, and crashes), retry backoffs, and the terminal outcome —
//! as one self-contained span tree.
//!
//! Each terminated job emits one `"trace"` JSONL line whose `spans` array
//! is validated by `patu_obs::schema::check_trace_tree`: local span ids
//! start at 1 per job (the root is always id 1), every non-root span names
//! a present parent, and ids never repeat. Because ids are job-local and
//! the serve event loop is single-threaded on the virtual clock, trace
//! lines are bit-identical across runs and `PATU_THREADS` settings.
//!
//! The builder also carries the session [`Collector`]'s reserved span id
//! (`flow`) for this job, so the per-GPU render spans recorded during
//! attempts can parent to the job's lifecycle span on the serve track —
//! that cross-track link is what the Chrome-trace exporter renders as flow
//! arrows from the job lane down into the GPU lanes.

use crate::job::{Job, Outcome};

/// How one traced execution attempt ended (mirrors the server's private
/// `AttemptEnd`, minus the timing payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AttemptTraceKind {
    /// Computed a clean frame.
    Clean,
    /// Computed to completion but the hash came back corrupt.
    Corrupt,
    /// Lost to an outage; the end cycle is the hang-detector report time.
    Crashed,
}

/// One node of a job's trace tree, with job-local ids.
#[derive(Debug, Clone)]
struct TraceSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start: u64,
    end: u64,
    /// Extra integer fields appended to the span object (`gpu`, `attempt`,
    /// `cycles`, `due`…). Names must not collide with the five core keys.
    args: Vec<(&'static str, u64)>,
}

/// Accumulates one job's lifecycle tree between admission and its terminal
/// outcome, then renders the `"trace"` JSONL line.
#[derive(Debug, Clone)]
pub(crate) struct TraceBuilder {
    job: Job,
    /// Reserved session-collector span id for the lifecycle span (0 when
    /// spans are disabled) — the parent for cross-track GPU render spans.
    flow: u64,
    next_id: u64,
    spans: Vec<TraceSpan>,
    /// When the current queue wait began (arrival, or the last requeue).
    queued_since: u64,
    /// SLO objectives whose burn-rate alert this job's observation tipped
    /// over — the causal link from an alert back to the job that burned
    /// the budget.
    slo_burns: Vec<&'static str>,
}

/// The job-local id of every tree's root span.
const ROOT_ID: u64 = 1;

impl TraceBuilder {
    /// Starts a tree for `job`; `flow` is the session collector's reserved
    /// span id (see [`patu_obs::Collector::reserve_span_id`]).
    pub(crate) fn new(job: &Job, flow: u64) -> TraceBuilder {
        TraceBuilder {
            job: *job,
            flow,
            next_id: ROOT_ID + 1,
            spans: Vec::new(),
            queued_since: job.arrival,
            slo_burns: Vec::new(),
        }
    }

    /// The reserved session-collector span id for cross-track links.
    pub(crate) fn flow(&self) -> u64 {
        self.flow
    }

    fn push(
        &mut self,
        parent: u64,
        name: &'static str,
        start: u64,
        end: u64,
        args: Vec<(&'static str, u64)>,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.spans.push(TraceSpan {
            id,
            parent,
            name,
            start,
            end: end.max(start),
            args,
        });
        id
    }

    /// The job was popped for dispatch at `now`: closes the current queue
    /// wait as a `serve::queue` span.
    pub(crate) fn dispatched(&mut self, now: u64) {
        let since = self.queued_since;
        self.push(ROOT_ID, "serve::queue", since, now, Vec::new());
    }

    /// A retry was scheduled: the job cools down from `from` until `due`.
    pub(crate) fn retry_wait(&mut self, from: u64, due: u64) {
        self.push(ROOT_ID, "serve::retry_wait", from, due, Vec::new());
        self.queued_since = due;
    }

    /// The cooled retry actually re-entered the queue at `now` (the event
    /// loop may wake later than the due cycle).
    pub(crate) fn requeued(&mut self, now: u64) {
        self.queued_since = self.queued_since.max(now);
    }

    /// Records one execution attempt and returns its span id (the parent
    /// for a render child). Hedged attempts get distinct span names so the
    /// duplicate dispatches read directly off the tree.
    pub(crate) fn attempt(
        &mut self,
        hedged: bool,
        kind: AttemptTraceKind,
        gpu: usize,
        attempt: u32,
        start: u64,
        end: u64,
    ) -> u64 {
        let name = match (hedged, kind) {
            (false, AttemptTraceKind::Clean) => "serve::attempt",
            (false, AttemptTraceKind::Corrupt) => "serve::attempt::corrupt",
            (false, AttemptTraceKind::Crashed) => "serve::attempt::crashed",
            (true, AttemptTraceKind::Clean) => "serve::hedge",
            (true, AttemptTraceKind::Corrupt) => "serve::hedge::corrupt",
            (true, AttemptTraceKind::Crashed) => "serve::hedge::crashed",
        };
        self.push(
            ROOT_ID,
            name,
            start,
            end,
            vec![("gpu", gpu as u64), ("attempt", u64::from(attempt))],
        )
    }

    /// Records the render work inside attempt span `parent` (`cycles` is
    /// the straggle-stretched service time actually spent).
    pub(crate) fn render(&mut self, parent: u64, start: u64, end: u64, cycles: u64) {
        self.push(
            parent,
            "serve::render",
            start,
            end,
            vec![("cycles", cycles)],
        );
    }

    /// Tags the tree with an SLO whose alert this job's terminal
    /// observation fired.
    pub(crate) fn slo_burn(&mut self, slo: &'static str) {
        self.slo_burns.push(slo);
    }

    /// Closes the tree at the terminal outcome and renders the `"trace"`
    /// JSONL line (newline-terminated).
    pub(crate) fn finish(mut self, outcome: Outcome, finish: u64) -> String {
        if outcome == Outcome::Shed {
            self.push(ROOT_ID, "serve::shed", self.job.arrival, finish, Vec::new());
        }
        let (label, end) = match outcome {
            Outcome::Delivered => ("delivered", finish),
            Outcome::Shed => ("shed", finish),
            Outcome::Failed => ("failed", finish),
        };
        let mut line = format!(
            "{{\"type\":\"trace\",\"job\":{},\"client\":{},\"tier\":{},\"outcome\":\"{}\",\"root\":{}",
            self.job.id,
            self.job.client,
            self.job.tier.index(),
            label,
            ROOT_ID,
        );
        if !self.slo_burns.is_empty() {
            line.push_str(",\"slo_burns\":[");
            for (i, slo) in self.slo_burns.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('"');
                line.push_str(slo);
                line.push('"');
            }
            line.push(']');
        }
        line.push_str(",\"spans\":[");
        let root = TraceSpan {
            id: ROOT_ID,
            parent: 0,
            name: "serve::lifecycle",
            start: self.job.arrival,
            end: end.max(self.job.arrival),
            args: Vec::new(),
        };
        for (i, span) in std::iter::once(&root).chain(self.spans.iter()).enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start\":{},\"end\":{}",
                span.id, span.parent, span.name, span.start, span.end,
            ));
            for (name, value) in &span.args {
                line.push_str(&format!(",\"{name}\":{value}"));
            }
            line.push('}');
        }
        line.push_str("]}\n");
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Tier;

    fn job() -> Job {
        Job {
            id: 7,
            client: 2,
            tier: Tier::Interactive,
            scene: 0,
            frame: 3,
            arrival: 100,
            deadline: 5_000,
        }
    }

    #[test]
    fn full_lifecycle_tree_passes_the_schema_checker() {
        let mut b = TraceBuilder::new(&job(), 0);
        b.dispatched(150);
        let a1 = b.attempt(false, AttemptTraceKind::Corrupt, 0, 1, 170, 1_170);
        b.render(a1, 170, 1_170, 1_000);
        b.retry_wait(1_170, 1_400);
        b.requeued(1_420);
        b.dispatched(1_500);
        let a2 = b.attempt(false, AttemptTraceKind::Clean, 1, 2, 1_520, 2_520);
        b.render(a2, 1_520, 2_520, 1_000);
        b.slo_burn("slo::miss::interactive");
        let line = b.finish(Outcome::Delivered, 2_520);
        assert!(line.ends_with('\n'));
        let checked = patu_obs::schema::check_stream(&line).expect("valid trace line");
        assert_eq!(checked, 1);
        assert!(line.contains("\"slo_burns\":[\"slo::miss::interactive\"]"));
        assert!(line.contains("\"name\":\"serve::retry_wait\""));
        assert!(line.contains("\"name\":\"serve::attempt::corrupt\""));
        assert!(line.contains("\"cycles\":1000"));
    }

    #[test]
    fn shed_and_crash_trees_are_well_formed() {
        let shed = TraceBuilder::new(&job(), 0).finish(Outcome::Shed, 100);
        assert_eq!(patu_obs::schema::check_stream(&shed).expect("valid"), 1);
        assert!(shed.contains("\"outcome\":\"shed\""));
        assert!(shed.contains("serve::shed"));

        let mut b = TraceBuilder::new(&job(), 0);
        b.dispatched(150);
        b.attempt(true, AttemptTraceKind::Crashed, 1, 1, 170, 2_170);
        let failed = b.finish(Outcome::Failed, 2_170);
        assert_eq!(patu_obs::schema::check_stream(&failed).expect("valid"), 1);
        assert!(failed.contains("serve::hedge::crashed"));
    }

    #[test]
    fn ids_are_job_local_and_sequential() {
        let mut b = TraceBuilder::new(&job(), 42);
        assert_eq!(b.flow(), 42);
        b.dispatched(150);
        let a = b.attempt(false, AttemptTraceKind::Clean, 0, 1, 170, 200);
        assert_eq!(a, 3, "root=1, queue=2, attempt=3");
        let line = b.finish(Outcome::Delivered, 200);
        assert!(line.contains("\"root\":1"));
        assert!(line.contains("{\"id\":1,\"parent\":0,\"name\":\"serve::lifecycle\""));
    }
}
