//! Render jobs: what a client submits and what the server delivers.

/// A client's priority tier. Lower discriminants are more urgent; the
/// scheduler orders by `(tier, deadline, id)`, so `Interactive` jobs always
/// dispatch before `Standard` ones with comparable deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Latency-critical (a player's own viewport).
    Interactive = 0,
    /// Ordinary streaming traffic.
    Standard = 1,
    /// Deferred work (thumbnails, replays) with loose deadlines.
    Batch = 2,
}

impl Tier {
    /// All tiers, in scheduling order.
    pub const ALL: [Tier; 3] = [Tier::Interactive, Tier::Standard, Tier::Batch];

    /// Stable index for per-tier arrays and artifacts.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Interactive => "interactive",
            Tier::Standard => "standard",
            Tier::Batch => "batch",
        }
    }

    /// Deadline slack multiplier relative to the mean service time: tighter
    /// for interactive traffic, looser for batch.
    pub fn slack_factor(self) -> u64 {
        match self {
            Tier::Interactive => 3,
            Tier::Standard => 6,
            Tier::Batch => 12,
        }
    }
}

/// One render request: a client asks for a frame of a scene by a deadline.
/// All times are on the virtual clock, in simulated GPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Globally unique, assigned in arrival order — the deterministic
    /// tiebreaker everywhere.
    pub id: u64,
    /// Which client submitted it.
    pub client: u32,
    /// Priority tier.
    pub tier: Tier,
    /// Index into the configured scene list.
    pub scene: usize,
    /// Frame index within the scene's camera loop.
    pub frame: u32,
    /// Submission time (virtual cycles).
    pub arrival: u64,
    /// Latest acceptable completion time (virtual cycles).
    pub deadline: u64,
}

impl Job {
    /// The scheduler's EDF-with-tiers ordering key.
    pub fn key(&self) -> (u8, u64, u64) {
        (self.tier as u8, self.deadline, self.id)
    }
}

/// How a job left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Rendered and delivered (possibly after its deadline — see
    /// [`CompletedJob::missed_deadline`]).
    Delivered,
    /// Rejected at admission: the queue was full.
    Shed,
    /// Every execution attempt failed (crash, corrupt frame) and the
    /// retry budget — or the deadline — ran out.
    Failed,
}

/// The terminal record of one job, as written to the serve log.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedJob {
    /// The original request.
    pub job: Job,
    /// Delivered, shed, or failed.
    pub outcome: Outcome,
    /// Completion time (virtual cycles); equals `job.arrival` for sheds,
    /// and the moment the last attempt was abandoned for failures.
    pub finish: u64,
    /// The effective AF-SSIM threshold the frame was rendered with
    /// (quantized by the governor); 0 for sheds and failures.
    pub theta: f64,
    /// Mean SSIM of the delivered frame against the 16×AF baseline; 0 for
    /// sheds and failures.
    pub ssim: f64,
    /// Content hash of the delivered pixels (FNV-1a) — the cheap
    /// bit-identity witness for determinism tests; 0 for sheds and
    /// failures.
    pub image_hash: u64,
    /// Whether the governor delivered below the configured base threshold
    /// (quality was traded for throughput).
    pub degraded: bool,
    /// The GPU that produced the delivered frame (the winning side of a
    /// hedge); 0 for sheds and failures.
    pub gpu: u32,
    /// Re-executions the job consumed before reaching this outcome.
    pub retries: u32,
    /// Whether the delivered frame came out of a hedged duplicate
    /// dispatch.
    pub hedged: bool,
}

impl CompletedJob {
    /// Whether a delivered job finished after its deadline.
    pub fn missed_deadline(&self) -> bool {
        self.outcome == Outcome::Delivered && self.finish > self.job.deadline
    }

    /// Queueing + service latency for delivered jobs (0 for sheds; time
    /// to abandonment for failures).
    pub fn latency(&self) -> u64 {
        self.finish.saturating_sub(self.job.arrival)
    }

    /// Cycles of headroom left before the deadline (0 when missed, shed,
    /// or failed).
    pub fn slack(&self) -> u64 {
        match self.outcome {
            Outcome::Delivered => self.job.deadline.saturating_sub(self.finish),
            Outcome::Shed | Outcome::Failed => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, tier: Tier, deadline: u64) -> Job {
        Job {
            id,
            client: 0,
            tier,
            scene: 0,
            frame: 0,
            arrival: 10,
            deadline,
        }
    }

    #[test]
    fn key_orders_tier_then_deadline_then_id() {
        let interactive_late = job(5, Tier::Interactive, 900);
        let standard_early = job(1, Tier::Standard, 100);
        assert!(
            interactive_late.key() < standard_early.key(),
            "tier dominates deadline"
        );
        let a = job(1, Tier::Standard, 100);
        let b = job(2, Tier::Standard, 100);
        assert!(a.key() < b.key(), "id breaks deadline ties");
    }

    #[test]
    fn completion_accounting() {
        let mut c = CompletedJob {
            job: job(1, Tier::Interactive, 500),
            outcome: Outcome::Delivered,
            finish: 400,
            theta: 0.4,
            ssim: 0.97,
            image_hash: 1,
            degraded: false,
            gpu: 1,
            retries: 0,
            hedged: false,
        };
        assert!(!c.missed_deadline());
        assert_eq!(c.latency(), 390);
        assert_eq!(c.slack(), 100);
        c.finish = 600;
        assert!(c.missed_deadline());
        assert_eq!(c.slack(), 0);
        c.outcome = Outcome::Shed;
        assert!(!c.missed_deadline(), "sheds are not deadline misses");
        c.outcome = Outcome::Failed;
        assert!(!c.missed_deadline(), "failures are counted separately");
        assert_eq!(c.slack(), 0);
        assert_eq!(c.latency(), 590, "failure latency is time to abandonment");
    }
}
