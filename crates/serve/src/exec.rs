//! Frame services: how a dispatched batch becomes pixels.
//!
//! [`FrameService`] abstracts the GPU pool's render path so the scheduler
//! and governor can be unit-tested against a cheap synthetic plant
//! ([`SyntheticService`]) while sessions run the real simulator
//! ([`SimFrameService`]). Both are deterministic: a [`RenderKey`] fully
//! identifies the work, results are cached by key, and batch fan-out goes
//! through `patu_sim::parallel::run_indexed` — so serve outputs are
//! bit-identical across `PATU_THREADS` settings.

use crate::error::ServeError;
use crate::workload::ServeConfig;
use patu_core::FilterPolicy;
use patu_gpu::FaultConfig;
use patu_quality::{GrayImage, SampledSsimConfig};
use patu_scenes::Workload;
use patu_sim::render::{render_frame, render_sequence, RenderConfig};
use patu_sim::{parallel, SimError};
use patu_temporal::{TemporalConfig, TileStore};
use std::collections::BTreeMap;

/// FNV-1a over a byte stream: the cheap content hash used as the
/// bit-identity witness on delivered frames, and to fork per-key fault
/// seeds.
pub fn fnv1a(seed: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministically perturbs a frame hash into the *corrupt* value a
/// transient GPU fault leaves behind — the detection signal the serve
/// layer's retry path keys on. Guaranteed distinct from `hash`.
pub fn corrupted(hash: u64, salt: u64) -> u64 {
    let c = fnv1a(salt ^ 0x636f_7272_7570_7421, hash.to_le_bytes());
    if c == hash {
        !c
    } else {
        c
    }
}

/// Identifies one unit of render work: a scene frame at a quantized
/// threshold bucket (`theta = bucket / steps`). Jobs asking for the same
/// key share the rendered result — the cache the governor's quantization
/// exists to feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RenderKey {
    /// Index into the session's scene list.
    pub scene: usize,
    /// Frame index within the scene's camera loop.
    pub frame: u32,
    /// Quantized threshold bucket in `0..=steps`.
    pub bucket: u32,
}

impl RenderKey {
    /// The threshold this key renders at, on a `steps`-step grid.
    pub fn theta(&self, steps: u32) -> f64 {
        f64::from(self.bucket) / f64::from(steps.max(1))
    }

    fn mix(&self) -> u64 {
        fnv1a(
            0,
            (self.scene as u64)
                .to_le_bytes()
                .into_iter()
                .chain(self.frame.to_le_bytes())
                .chain(self.bucket.to_le_bytes()),
        )
    }
}

/// What serving one [`RenderKey`] produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServedFrame {
    /// Simulated GPU cycles the render took — the service time the virtual
    /// clock advances by.
    pub cycles: u64,
    /// Mean SSIM against the 16×AF baseline of the same frame.
    pub ssim: f64,
    /// FNV-1a hash of the delivered RGBA pixels.
    pub image_hash: u64,
}

/// A deterministic render backend for the serve loop.
pub trait FrameService {
    /// Renders (or recalls) every key, in order. One result per key.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when a key is unserviceable (unknown scene,
    /// simulator rejection).
    fn serve(&mut self, keys: &[RenderKey]) -> Result<Vec<ServedFrame>, ServeError>;

    /// The mean service-time estimate for admission/deadline calibration:
    /// the cost of scene 0, frame 0 at `bucket`.
    ///
    /// # Errors
    ///
    /// See [`FrameService::serve`].
    fn calibrate(&mut self, bucket: u32) -> Result<u64, ServeError> {
        let served = self.serve(&[RenderKey {
            scene: 0,
            frame: 0,
            bucket,
        }])?;
        Ok(served.first().map_or(1, |s| s.cycles.max(1)))
    }
}

/// The real backend: every key renders through the full PATU simulator.
///
/// Caches are keyed by [`RenderKey`] (policy renders) and `(scene, frame)`
/// (16×AF baselines for SSIM), both `BTreeMap`s. Uncached keys in a batch
/// fan out through `parallel::run_indexed` with the inner render pinned
/// serial — the same sharded-ownership/ordered-merge discipline as the
/// simulator itself, so results are independent of the thread count.
pub struct SimFrameService {
    workloads: Vec<Workload>,
    base_policy: FilterPolicy,
    steps: u32,
    faults: FaultConfig,
    threads: usize,
    /// The sampled-SSIM mode, resolved from `PATU_SSIM_SAMPLE` once at
    /// service construction (`None` = full MSSIM): serving re-reads no
    /// environment, so a mid-session knob flip cannot change what a
    /// session reports.
    ssim_mode: Option<f64>,
    /// Cross-frame reuse policy, resolved from `PATU_TEMPORAL` once at
    /// service construction. With mode `off` (the default) serving is
    /// byte-identical to a build without the temporal subsystem.
    temporal: TemporalConfig,
    /// One tile-reuse chain per `(scene, bucket)`: a client whose session
    /// walks a scene's frames in order at a stable governor bucket keeps
    /// hitting the same store, so consecutive frames blit coherent tiles.
    stores: BTreeMap<(usize, u32), TileStore>,
    baselines: BTreeMap<(usize, u32), (GrayImage, u64)>,
    rendered: BTreeMap<RenderKey, ServedFrame>,
    baseline_cycles: u64,
}

impl SimFrameService {
    /// Builds the service for a session: one [`Workload`] per configured
    /// scene at the session resolution.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] for unknown scene names or an invalid base
    /// policy.
    pub fn new(cfg: &ServeConfig) -> Result<SimFrameService, ServeError> {
        SimFrameService::with_temporal(cfg, TemporalConfig::from_env())
    }

    /// [`SimFrameService::new`] with an explicit temporal-reuse config
    /// instead of the `PATU_TEMPORAL` environment knob — the constructor
    /// tests use to exercise both serve paths without touching the
    /// process environment.
    ///
    /// # Errors
    ///
    /// See [`SimFrameService::new`].
    pub fn with_temporal(
        cfg: &ServeConfig,
        temporal: TemporalConfig,
    ) -> Result<SimFrameService, ServeError> {
        let base_policy = FilterPolicy::Patu {
            threshold: cfg.base_threshold,
        };
        base_policy.validate().map_err(SimError::from)?;
        let mut workloads = Vec::with_capacity(cfg.scenes.len());
        for name in &cfg.scenes {
            let w = Workload::build(name, cfg.resolution).map_err(SimError::Workload)?;
            workloads.push(w);
        }
        Ok(SimFrameService {
            workloads,
            base_policy,
            steps: cfg.governor_steps.max(1),
            faults: cfg.faults,
            threads: parallel::thread_count(cfg.threads),
            ssim_mode: SampledSsimConfig::new(0).resolved_fraction(),
            temporal,
            stores: BTreeMap::new(),
            baselines: BTreeMap::new(),
            rendered: BTreeMap::new(),
            baseline_cycles: 0,
        })
    }

    /// Renders the cache has absorbed so far — the knob for asserting the
    /// governor's quantization actually bounds distinct render work.
    pub fn distinct_renders(&self) -> usize {
        self.rendered.len()
    }

    /// Simulated cycles spent rendering 16×AF SSIM baselines — reference
    /// work on the analysis track, *not* on any serving GPU's clock. This
    /// is the source for the attribution profiler's `ssim_baseline` stage
    /// (excluded from the render-path conservation sum).
    pub fn baseline_cycles(&self) -> u64 {
        self.baseline_cycles
    }

    fn check_scene(&self, key: &RenderKey) -> Result<(), ServeError> {
        if key.scene >= self.workloads.len() {
            return Err(ServeError::UnknownScene {
                index: key.scene,
                scenes: self.workloads.len(),
            });
        }
        Ok(())
    }

    /// Fills the 16×AF baseline cache for every `(scene, frame)` the batch
    /// needs, fanning uncached renders out across workers.
    fn fill_baselines(&mut self, keys: &[RenderKey]) -> Result<(), ServeError> {
        let mut need: Vec<(usize, u32)> = keys
            .iter()
            .map(|k| (k.scene, k.frame))
            .filter(|id| !self.baselines.contains_key(id))
            .collect();
        need.sort_unstable();
        need.dedup();
        if need.is_empty() {
            return Ok(());
        }
        let workloads = &self.workloads;
        let results: Vec<Result<(GrayImage, u64, u64), SimError>> =
            parallel::run_indexed(self.threads.min(need.len()), need.len(), |i| {
                let (scene, frame) = need[i];
                // The baseline is the *reference*: rendered clean (no fault
                // injection) and serial, so SSIM always compares against the
                // same ground truth.
                let cfg = RenderConfig::new(FilterPolicy::Baseline).with_threads(1);
                let result = render_frame(&workloads[scene], frame, &cfg)?;
                let hash = hash_image(&result);
                Ok((result.luma(), hash, result.stats.cycles))
            });
        for (id, result) in need.into_iter().zip(results) {
            let (luma, hash, cycles) = result?;
            self.baseline_cycles += cycles;
            self.baselines.insert(id, (luma, hash));
        }
        Ok(())
    }

    /// The temporal serve path: uncached keys group into `(scene, bucket)`
    /// chains, each chain renders its frames in ascending order through
    /// [`render_sequence`] against that chain's persistent [`TileStore`],
    /// so a client stepping a scene at a stable governor bucket reuses
    /// tiles across its frames. Chains process in sorted order — results
    /// depend only on the session's key stream, never on thread count.
    fn serve_sequences(&mut self, need: &[RenderKey]) -> Result<(), ServeError> {
        let mut chains: BTreeMap<(usize, u32), Vec<RenderKey>> = BTreeMap::new();
        for key in need {
            chains
                .entry((key.scene, key.bucket))
                .or_default()
                .push(*key);
        }
        for ((scene, bucket), mut keys) in chains {
            keys.sort_unstable_by_key(|k| k.frame);
            let frames: Vec<u32> = keys.iter().map(|k| k.frame).collect();
            let policy = self.base_policy.with_threshold(keys[0].theta(self.steps));
            // The chain forks one fault stream per (scene, bucket); inside
            // it, `render_sequence` keys faults per (frame, tile), so a
            // reused tile never perturbs a rerendered tile's faults.
            let chain_faults = FaultConfig {
                seed: self.faults.seed
                    ^ fnv1a(
                        0,
                        (scene as u64)
                            .to_le_bytes()
                            .into_iter()
                            .chain(bucket.to_le_bytes()),
                    ),
                ..self.faults
            };
            let cfg = RenderConfig::new(policy)
                .with_threads(1)
                .with_faults(chain_faults);
            let mut store = self
                .stores
                .remove(&(scene, bucket))
                .unwrap_or_else(|| TileStore::new(self.temporal));
            let results = render_sequence(&self.workloads[scene], &frames, &cfg, &mut store)?;
            self.stores.insert((scene, bucket), store);
            for (key, result) in keys.into_iter().zip(results) {
                let ssim = match self.baselines.get(&(key.scene, key.frame)) {
                    Some((luma, _)) => f64::from(SampledSsimConfig::new(key.mix()).mssim_with(
                        luma,
                        &result.luma(),
                        self.ssim_mode,
                    )),
                    None => 0.0,
                };
                self.rendered.insert(
                    key,
                    ServedFrame {
                        cycles: result.stats.cycles.max(1),
                        ssim,
                        image_hash: hash_image(&result),
                    },
                );
            }
        }
        Ok(())
    }
}

fn hash_image(result: &patu_sim::FrameResult) -> u64 {
    fnv1a(
        0,
        result
            .image
            .pixels()
            .iter()
            .flat_map(|p| [p.r, p.g, p.b, p.a]),
    )
}

impl FrameService for SimFrameService {
    fn serve(&mut self, keys: &[RenderKey]) -> Result<Vec<ServedFrame>, ServeError> {
        for key in keys {
            self.check_scene(key)?;
        }
        self.fill_baselines(keys)?;
        let mut need: Vec<RenderKey> = keys
            .iter()
            .copied()
            .filter(|k| !self.rendered.contains_key(k))
            .collect();
        need.sort_unstable();
        need.dedup();
        if !need.is_empty() && !self.temporal.mode.is_off() {
            self.serve_sequences(&need)?;
        } else if !need.is_empty() {
            let workloads = &self.workloads;
            let baselines = &self.baselines;
            let base_policy = self.base_policy;
            let steps = self.steps;
            let faults = self.faults;
            let ssim_mode = self.ssim_mode;
            let results: Vec<Result<ServedFrame, SimError>> =
                parallel::run_indexed(self.threads.min(need.len()), need.len(), |i| {
                    let key = need[i];
                    let policy = base_policy.with_threshold(key.theta(steps));
                    // Fault streams fork per render key, not per job, so
                    // cache hits and misses see identical pixels.
                    let faults = FaultConfig {
                        seed: faults.seed ^ key.mix(),
                        ..faults
                    };
                    let cfg = RenderConfig::new(policy)
                        .with_threads(1)
                        .with_faults(faults);
                    let result = render_frame(&workloads[key.scene], key.frame, &cfg)?;
                    let ssim = match baselines.get(&(key.scene, key.frame)) {
                        // Sampled estimator, seeded per render key: the
                        // stratified plan is a pure function of the key and
                        // the frame size, so cache hits and misses — and any
                        // PATU_THREADS setting — report the same number.
                        Some((luma, _)) => f64::from(SampledSsimConfig::new(key.mix()).mssim_with(
                            luma,
                            &result.luma(),
                            ssim_mode,
                        )),
                        // Unreachable (fill_baselines ran), but degrade to
                        // "no quality claim" instead of panicking.
                        None => 0.0,
                    };
                    Ok(ServedFrame {
                        cycles: result.stats.cycles.max(1),
                        ssim,
                        image_hash: hash_image(&result),
                    })
                });
            for (key, result) in need.into_iter().zip(results) {
                self.rendered.insert(key, result?);
            }
        }
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            match self.rendered.get(key) {
                Some(frame) => out.push(*frame),
                None => {
                    return Err(ServeError::UnknownScene {
                        index: key.scene,
                        scenes: self.workloads.len(),
                    })
                }
            }
        }
        Ok(out)
    }
}

/// A synthetic plant for unit tests: service time falls linearly with the
/// threshold (approximation is cheap), SSIM falls gently, and every result
/// is a pure function of the key. No rendering, microsecond-fast.
#[derive(Debug, Clone)]
pub struct SyntheticService {
    base_cycles: u64,
    steps: u32,
}

impl SyntheticService {
    /// A plant whose full-quality render costs `base_cycles`.
    pub fn new(base_cycles: u64, steps: u32) -> SyntheticService {
        SyntheticService {
            base_cycles: base_cycles.max(1),
            steps: steps.max(1),
        }
    }
}

impl FrameService for SyntheticService {
    fn serve(&mut self, keys: &[RenderKey]) -> Result<Vec<ServedFrame>, ServeError> {
        Ok(keys
            .iter()
            .map(|key| {
                let theta = key.theta(self.steps);
                // ±10% per-(scene,frame) cost spread, deterministic.
                let jitter = 0.9 + 0.2 * (key.mix() % 1000) as f64 / 1000.0;
                let cycles = (self.base_cycles as f64 * (0.4 + 0.6 * theta) * jitter) as u64;
                ServedFrame {
                    cycles: cycles.max(1),
                    ssim: 1.0 - 0.12 * (1.0 - theta),
                    image_hash: key.mix(),
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(scene: usize, frame: u32, bucket: u32) -> RenderKey {
        RenderKey {
            scene,
            frame,
            bucket,
        }
    }

    #[test]
    fn corrupted_hashes_differ_and_replay() {
        for h in [0u64, 1, 0xdead_beef, u64::MAX] {
            for salt in [0u64, 7, 1207] {
                let c = corrupted(h, salt);
                assert_ne!(c, h, "corruption must be detectable");
                assert_eq!(c, corrupted(h, salt), "and deterministic");
            }
        }
        assert_ne!(corrupted(5, 1), corrupted(5, 2), "salt decorrelates");
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        let a = fnv1a(0, *b"abc");
        let b = fnv1a(0, *b"abd");
        assert_ne!(a, b);
        assert_eq!(a, fnv1a(0, *b"abc"));
        assert_ne!(fnv1a(1, *b"abc"), a, "seed perturbs");
    }

    #[test]
    fn synthetic_is_cheaper_and_worse_at_low_theta() {
        let mut s = SyntheticService::new(1_000_000, 8);
        let hi = s.serve(&[key(0, 0, 8)]).expect("serves")[0];
        let lo = s.serve(&[key(0, 0, 2)]).expect("serves")[0];
        assert!(lo.cycles < hi.cycles, "approximation is faster");
        assert!(lo.ssim < hi.ssim, "and slightly worse");
        assert!(lo.ssim > 0.85, "but bounded");
    }

    #[test]
    fn synthetic_calibrate_reports_base_bucket_cost() {
        let mut s = SyntheticService::new(2_000_000, 8);
        let c = s.calibrate(4).expect("calibrates");
        let direct = s.serve(&[key(0, 0, 4)]).expect("serves")[0].cycles;
        assert_eq!(c, direct);
    }

    #[test]
    fn sim_service_caches_and_hashes() {
        let cfg = ServeConfig {
            scenes: vec!["doom3".to_string()],
            resolution: (96, 64),
            ..ServeConfig::default()
        };
        let mut s = SimFrameService::new(&cfg).expect("builds");
        let k = key(0, 0, 3);
        let first = s.serve(&[k]).expect("renders")[0];
        assert_eq!(s.distinct_renders(), 1);
        let again = s.serve(&[k, k]).expect("recalls");
        assert_eq!(again, vec![first, first], "cache hit is bit-identical");
        assert_eq!(s.distinct_renders(), 1, "no re-render");
        assert!(first.ssim > 0.8 && first.ssim <= 1.0, "ssim {}", first.ssim);
        assert!(first.cycles > 0);
        assert_ne!(first.image_hash, 0);
    }

    #[test]
    fn temporal_service_reuses_across_frames_and_stays_deterministic() {
        use patu_temporal::TemporalMode;
        let cfg = ServeConfig {
            scenes: vec!["orbit".to_string()],
            resolution: (96, 64),
            ..ServeConfig::default()
        };
        let keys: Vec<RenderKey> = (0..4).map(|f| key(0, f, 3)).collect();
        let on_cfg = TemporalConfig::for_mode(TemporalMode::On);
        let mut on = SimFrameService::with_temporal(&cfg, on_cfg).expect("builds");
        let served = on.serve(&keys).expect("serves");
        let rerun = SimFrameService::with_temporal(&cfg, on_cfg)
            .expect("builds")
            .serve(&keys)
            .expect("serves");
        assert_eq!(served, rerun, "temporal serving is deterministic");
        assert_eq!(on.distinct_renders(), 4);
        let cached = on.serve(&keys).expect("recalls");
        assert_eq!(cached, served, "cache hits are bit-identical");
        assert_eq!(on.distinct_renders(), 4, "no re-render");

        // Off mode through the explicit constructor takes the legacy
        // per-key path; later frames cost more there because nothing blits.
        let off = SimFrameService::with_temporal(&cfg, TemporalConfig::off())
            .expect("builds")
            .serve(&keys)
            .expect("serves");
        let on_cycles: u64 = served.iter().map(|f| f.cycles).sum();
        let off_cycles: u64 = off.iter().map(|f| f.cycles).sum();
        assert!(
            on_cycles < off_cycles,
            "reuse must shed serve cycles ({on_cycles} vs {off_cycles})"
        );
        // The cold first frame renders fully either way.
        assert_eq!(served[0].image_hash, off[0].image_hash);
        for f in &served {
            assert!(f.ssim > 0.8 && f.ssim <= 1.0, "ssim {}", f.ssim);
        }
    }

    #[test]
    fn sim_service_rejects_unknown_scene_index() {
        let cfg = ServeConfig {
            scenes: vec!["doom3".to_string()],
            resolution: (96, 64),
            ..ServeConfig::default()
        };
        let mut s = SimFrameService::new(&cfg).expect("builds");
        assert!(matches!(
            s.serve(&[key(5, 0, 3)]),
            Err(ServeError::UnknownScene { index: 5, .. })
        ));
        let bad = ServeConfig {
            scenes: vec!["not-a-game".to_string()],
            ..cfg
        };
        assert!(SimFrameService::new(&bad).is_err());
    }
}
