//! Homogeneous-space polygon clipping (Sutherland–Hodgman) against the view
//! frustum, with attribute interpolation.

use patu_gmath::{Frustum, Vec2, Vec4};

/// A vertex in clip space carrying its interpolated attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClipVertex {
    /// Homogeneous clip-space position.
    pub clip: Vec4,
    /// Texture coordinates.
    pub uv: Vec2,
}

impl ClipVertex {
    /// Creates a clip-space vertex.
    pub const fn new(clip: Vec4, uv: Vec2) -> ClipVertex {
        ClipVertex { clip, uv }
    }

    fn lerp(a: &ClipVertex, b: &ClipVertex, t: f32) -> ClipVertex {
        ClipVertex {
            clip: a.clip.lerp(b.clip, t),
            uv: a.uv.lerp(b.uv, t),
        }
    }
}

/// Clips a triangle against all six frustum planes.
///
/// Returns the resulting convex polygon as a fan-ready vertex list (possibly
/// empty when fully outside, up to 9 vertices in the worst case). Vertices
/// exactly on a plane are kept, so shared edges between adjacent triangles
/// clip consistently.
pub fn clip_triangle(v0: ClipVertex, v1: ClipVertex, v2: ClipVertex) -> Vec<ClipVertex> {
    // Trivial accept: all vertices inside.
    if [v0, v1, v2].iter().all(|v| Frustum::contains(v.clip)) {
        return vec![v0, v1, v2];
    }
    // Trivial reject: all vertices outside one plane.
    let codes = [
        Frustum::outcode(v0.clip),
        Frustum::outcode(v1.clip),
        Frustum::outcode(v2.clip),
    ];
    if codes[0] & codes[1] & codes[2] != 0 {
        return Vec::new();
    }

    let mut poly = vec![v0, v1, v2];
    for plane in &Frustum::CLIP_PLANES {
        if poly.is_empty() {
            break;
        }
        let mut out = Vec::with_capacity(poly.len() + 1);
        for i in 0..poly.len() {
            let cur = poly[i];
            let next = poly[(i + 1) % poly.len()];
            let cur_in = plane.is_inside(cur.clip);
            let next_in = plane.is_inside(next.clip);
            if cur_in {
                out.push(cur);
            }
            if cur_in != next_in {
                if let Some(t) = plane.intersect_segment(cur.clip, next.clip) {
                    out.push(ClipVertex::lerp(&cur, &next, t));
                }
            }
        }
        poly = out;
    }
    poly
}

/// Triangulates a convex polygon (as produced by [`clip_triangle`]) into a
/// fan of triangles around its first vertex.
pub fn fan_triangulate(poly: &[ClipVertex]) -> Vec<[ClipVertex; 3]> {
    if poly.len() < 3 {
        return Vec::new();
    }
    (1..poly.len() - 1)
        .map(|i| [poly[0], poly[i], poly[i + 1]])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32, y: f32, z: f32, w: f32) -> ClipVertex {
        ClipVertex::new(Vec4::new(x, y, z, w), Vec2::new(x, y))
    }

    #[test]
    fn fully_inside_passes_through() {
        let poly = clip_triangle(
            v(0.0, 0.0, 0.0, 1.0),
            v(0.5, 0.0, 0.0, 1.0),
            v(0.0, 0.5, 0.0, 1.0),
        );
        assert_eq!(poly.len(), 3);
    }

    #[test]
    fn fully_outside_rejected() {
        let poly = clip_triangle(
            v(5.0, 0.0, 0.0, 1.0),
            v(6.0, 0.0, 0.0, 1.0),
            v(5.0, 1.0, 0.0, 1.0),
        );
        assert!(poly.is_empty());
    }

    #[test]
    fn straddling_one_plane_clips() {
        // Triangle crossing the right plane (x = w).
        let poly = clip_triangle(
            v(0.0, -0.5, 0.0, 1.0),
            v(2.0, 0.0, 0.0, 1.0),
            v(0.0, 0.5, 0.0, 1.0),
        );
        assert!(poly.len() >= 3, "clipped polygon has >= 3 vertices");
        for p in &poly {
            assert!(p.clip.x <= p.clip.w + 1e-5, "all inside right plane");
        }
    }

    #[test]
    fn clip_interpolates_attributes() {
        // Edge from x=0 (uv.x=0) to x=2 (uv.x=2); crossing x=w=1 must give uv.x=1.
        let poly = clip_triangle(
            ClipVertex::new(Vec4::new(0.0, 0.0, 0.0, 1.0), Vec2::new(0.0, 0.0)),
            ClipVertex::new(Vec4::new(2.0, 0.0, 0.0, 1.0), Vec2::new(2.0, 0.0)),
            ClipVertex::new(Vec4::new(0.0, 0.5, 0.0, 1.0), Vec2::new(0.0, 1.0)),
        );
        let crossing: Vec<_> = poly
            .iter()
            .filter(|p| (p.clip.x - p.clip.w).abs() < 1e-5)
            .collect();
        assert!(!crossing.is_empty(), "an edge must cross x = w");
        for p in crossing {
            assert!(
                (p.uv.x - 1.0).abs() < 0.51,
                "uv tracks position: {}",
                p.uv.x
            );
        }
    }

    #[test]
    fn near_plane_clip_of_behind_camera_triangle() {
        // One vertex behind the near plane (z < -w).
        let poly = clip_triangle(
            v(0.0, 0.0, -2.0, 1.0),
            v(0.5, 0.0, 0.0, 1.0),
            v(0.0, 0.5, 0.0, 1.0),
        );
        assert!(poly.len() >= 3);
        for p in &poly {
            assert!(p.clip.z >= -p.clip.w - 1e-5);
        }
    }

    #[test]
    fn corner_clip_can_produce_more_vertices() {
        // A large triangle covering the whole volume clips to (part of) the box.
        let poly = clip_triangle(
            v(-10.0, -10.0, 0.0, 1.0),
            v(10.0, -10.0, 0.0, 1.0),
            v(0.0, 10.0, 0.0, 1.0),
        );
        assert!(
            poly.len() >= 4,
            "clipping against corners adds vertices, got {}",
            poly.len()
        );
    }

    #[test]
    fn fan_triangulation_counts() {
        let quad = vec![
            v(0.0, 0.0, 0.0, 1.0),
            v(0.5, 0.0, 0.0, 1.0),
            v(0.5, 0.5, 0.0, 1.0),
            v(0.0, 0.5, 0.0, 1.0),
        ];
        assert_eq!(fan_triangulate(&quad).len(), 2);
        assert_eq!(fan_triangulate(&quad[..3]).len(), 1);
        assert!(fan_triangulate(&quad[..2]).is_empty());
    }
}
