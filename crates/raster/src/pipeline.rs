//! The geometry front-end: vertex processing → clipping → culling → tiling →
//! rasterization → early depth test → fragment emission.
//!
//! This is the paper's Fig. 2 up to (but excluding) texture filtering: the
//! emitted [`Fragment`]s carry perspective-correct UVs and analytic
//! derivatives, from which the texture unit (modeled in `patu-gpu` +
//! `patu-core`) builds sampling footprints.

use crate::camera::Camera;
use crate::clip::{clip_triangle, fan_triangulate, ClipVertex};
use crate::fragment::Fragment;
use crate::framebuffer::DepthBuffer;
use crate::mesh::Mesh;
use crate::tiler::{bin_triangles, ScreenTriangle, TileBin};
use patu_gmath::{EdgeEval, Vec2};

/// The order in which a tile's surviving fragments are emitted to fragment
/// shading (and thus to the texture unit).
///
/// Real GPUs traverse tiles in locality-preserving orders so consecutive
/// texture requests hit nearby texels; the choice is measurable in the
/// texture-cache hit rate (`ablation_traversal` in `patu-bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraversalOrder {
    /// Plain scanline order within each triangle's tile slice.
    #[default]
    RowMajor,
    /// Z-order (Morton) interleave of the pixel coordinates within the tile:
    /// consecutive fragments stay spatially clustered.
    Morton,
}

/// Interleaves the low 16 bits of `x` and `y` into a Morton key.
fn morton_key(x: u32, y: u32) -> u64 {
    fn spread(mut v: u64) -> u64 {
        v &= 0xFFFF;
        v = (v | (v << 8)) & 0x00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333;
        v = (v | (v << 1)) & 0x5555_5555;
        v
    }
    spread(u64::from(x)) | (spread(u64::from(y)) << 1)
}

/// Counters from one frame's geometry pass. These feed the timing model
/// (vertex fetch traffic, rasterizer work) and the paper's §II statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GeometryStats {
    /// Vertices transformed by vertex processing.
    pub vertices_processed: u64,
    /// Triangles submitted by the application.
    pub triangles_in: u64,
    /// Triangles discarded entirely by frustum clipping.
    pub triangles_clipped_out: u64,
    /// Triangles discarded by back-face culling.
    pub triangles_culled: u64,
    /// Screen triangles sent to the rasterizer (after clip-induced fanning).
    pub triangles_rasterized: u64,
    /// Fragments produced by the rasterizer (before the depth test).
    pub fragments_generated: u64,
    /// Fragments surviving the early depth test (sent to fragment shading).
    pub fragments_shaded: u64,
    /// Tiles containing at least one triangle.
    pub tiles_covered: u64,
}

impl GeometryStats {
    /// Exports every counter into `telemetry` under `geom::*` names. A
    /// no-op below [`patu_obs::TraceLevel::Counters`].
    pub fn export_counters(&self, telemetry: &mut patu_obs::Collector) {
        telemetry.add("geom::vertices", self.vertices_processed);
        telemetry.add("geom::triangles_in", self.triangles_in);
        telemetry.add("geom::triangles_clipped_out", self.triangles_clipped_out);
        telemetry.add("geom::triangles_culled", self.triangles_culled);
        telemetry.add("geom::triangles_rasterized", self.triangles_rasterized);
        telemetry.add("geom::fragments_generated", self.fragments_generated);
        telemetry.add("geom::fragments_shaded", self.fragments_shaded);
        telemetry.add("geom::tiles_covered", self.tiles_covered);
    }
}

/// One tile's rasterization output: surviving fragments in shading order.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    /// Tile column.
    pub tx: u32,
    /// Tile row.
    pub ty: u32,
    /// Fragments that passed early-Z, in triangle-submission order. Later
    /// fragments at the same pixel are closer and overwrite earlier colors.
    pub fragments: Vec<Fragment>,
}

/// A full frame's geometry output.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometryOutput {
    /// Viewport width in pixels.
    pub width: u32,
    /// Viewport height in pixels.
    pub height: u32,
    /// Non-empty tiles in row-major order.
    pub tiles: Vec<Tile>,
    /// Frame statistics.
    pub stats: GeometryStats,
}

impl GeometryOutput {
    /// Iterates over all fragments across tiles, in shading order.
    pub fn fragments(&self) -> impl Iterator<Item = &Fragment> + '_ {
        self.tiles.iter().flat_map(|t| t.fragments.iter())
    }
}

/// The rasterization pipeline for a fixed viewport.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pipeline {
    width: u32,
    height: u32,
    tile_size: u32,
    traversal: TraversalOrder,
}

impl Pipeline {
    /// Creates a pipeline with the paper's 16×16 tile size.
    ///
    /// # Panics
    ///
    /// Panics if either viewport dimension is zero.
    pub fn new(width: u32, height: u32) -> Pipeline {
        Pipeline::with_tile_size(width, height, crate::TILE_SIZE)
    }

    /// Creates a pipeline with a custom tile size.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn with_tile_size(width: u32, height: u32, tile_size: u32) -> Pipeline {
        assert!(width > 0 && height > 0, "viewport must be non-empty");
        assert!(tile_size > 0, "tile size must be positive");
        Pipeline {
            width,
            height,
            tile_size,
            traversal: TraversalOrder::RowMajor,
        }
    }

    /// Sets the intra-tile fragment traversal order.
    #[must_use]
    pub fn with_traversal(mut self, traversal: TraversalOrder) -> Pipeline {
        self.traversal = traversal;
        self
    }

    /// Viewport width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Viewport height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Tile edge length.
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Runs the geometry pass over `meshes` as seen from `camera`.
    pub fn run(&self, meshes: &[Mesh], camera: &Camera) -> GeometryOutput {
        let mut stats = GeometryStats::default();
        let screen_tris = self.process_geometry(meshes, camera, &mut stats);
        let bins = bin_triangles(&screen_tris, self.width, self.height, self.tile_size);
        stats.tiles_covered = bins.len() as u64;

        let mut depth = DepthBuffer::new(self.width, self.height);
        let mut tiles = Vec::with_capacity(bins.len());
        for bin in bins {
            let tile = self.rasterize_tile(&bin, &screen_tris, &mut depth, &mut stats);
            if !tile.fragments.is_empty() {
                tiles.push(tile);
            }
        }

        GeometryOutput {
            width: self.width,
            height: self.height,
            tiles,
            stats,
        }
    }

    /// Vertex processing + clipping + culling + viewport transform.
    fn process_geometry(
        &self,
        meshes: &[Mesh],
        camera: &Camera,
        stats: &mut GeometryStats,
    ) -> Vec<ScreenTriangle> {
        let vp = camera.view_projection();
        let mut out = Vec::new();
        let mut primitive: u32 = 0;

        for mesh in meshes {
            let mvp = vp * mesh.transform;
            stats.vertices_processed += mesh.vertices.len() as u64;
            let clip_verts: Vec<ClipVertex> = mesh
                .vertices
                .iter()
                .map(|v| ClipVertex::new(mvp * v.position.extend(1.0), v.uv))
                .collect();

            for tri in &mesh.triangles {
                stats.triangles_in += 1;
                let poly = clip_triangle(
                    clip_verts[tri[0] as usize],
                    clip_verts[tri[1] as usize],
                    clip_verts[tri[2] as usize],
                );
                if poly.len() < 3 {
                    stats.triangles_clipped_out += 1;
                    continue;
                }
                let mut emitted = false;
                for fan in fan_triangulate(&poly) {
                    if let Some(st) = self.to_screen(&fan, mesh.material, primitive) {
                        out.push(st);
                        stats.triangles_rasterized += 1;
                        emitted = true;
                    }
                }
                if !emitted {
                    stats.triangles_culled += 1;
                }
                primitive += 1;
            }
        }
        out
    }

    /// Perspective divide + viewport transform + back-face cull.
    #[allow(clippy::wrong_self_convention)]
    fn to_screen(
        &self,
        tri: &[ClipVertex; 3],
        material: usize,
        primitive: u32,
    ) -> Option<ScreenTriangle> {
        let mut pos = [Vec2::ZERO; 3];
        let mut z = [0.0f32; 3];
        let mut inv_w = [0.0f32; 3];
        let mut uv_over_w = [Vec2::ZERO; 3];
        for (i, v) in tri.iter().enumerate() {
            if v.clip.w <= 0.0 {
                // Fully clipped geometry should never reach here; guard anyway.
                return None;
            }
            let ndc = v.clip.perspective_divide();
            pos[i] = Vec2::new(
                (ndc.x + 1.0) * 0.5 * self.width as f32,
                (1.0 - ndc.y) * 0.5 * self.height as f32,
            );
            z[i] = ndc.z;
            inv_w[i] = 1.0 / v.clip.w;
            uv_over_w[i] = v.uv * inv_w[i];
        }
        // Back-face cull: with Y flipped by the viewport transform, CCW
        // world-space winding appears clockwise (negative area) on screen.
        let area = (pos[1] - pos[0]).cross(pos[2] - pos[0]);
        if area >= 0.0 {
            return None;
        }
        Some(ScreenTriangle {
            pos,
            z,
            inv_w,
            uv_over_w,
            material,
            primitive,
        })
    }

    /// Rasterizes all triangles binned to `bin`, early-depth-testing against
    /// the shared frame depth buffer.
    fn rasterize_tile(
        &self,
        bin: &TileBin,
        tris: &[ScreenTriangle],
        depth: &mut DepthBuffer,
        stats: &mut GeometryStats,
    ) -> Tile {
        let x0 = bin.x0(self.tile_size);
        let y0 = bin.y0(self.tile_size);
        let x1 = (x0 + self.tile_size).min(self.width);
        let y1 = (y0 + self.tile_size).min(self.height);
        let mut fragments = Vec::new();

        for &ti in &bin.triangles {
            let tri = &tris[ti];
            let Some(edges) = EdgeEval::new(tri.pos[0], tri.pos[1], tri.pos[2]) else {
                continue; // degenerate after snapping
            };

            // Per-triangle constant gradients of the linear quantities
            // 1/w and uv/w, used for perspective-correct derivatives.
            let grad_inv_w = linear_gradient(&tri.pos, &[tri.inv_w[0], tri.inv_w[1], tri.inv_w[2]]);
            let grad_s = linear_gradient(
                &tri.pos,
                &[tri.uv_over_w[0].x, tri.uv_over_w[1].x, tri.uv_over_w[2].x],
            );
            let grad_t = linear_gradient(
                &tri.pos,
                &[tri.uv_over_w[0].y, tri.uv_over_w[1].y, tri.uv_over_w[2].y],
            );

            // Clip the triangle's bounds to this tile.
            let bb = tri.bounds();
            let px0 = (bb.min.x.floor().max(x0 as f32) as u32).min(x1.saturating_sub(1));
            let py0 = (bb.min.y.floor().max(y0 as f32) as u32).min(y1.saturating_sub(1));
            let px1 = (bb.max.x.ceil() as u32 + 1).min(x1);
            let py1 = (bb.max.y.ceil() as u32 + 1).min(y1);

            for py in py0..py1 {
                for px in px0..px1 {
                    let p = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
                    let (w0, w1, w2) = edges.weights(p);
                    if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                        continue;
                    }
                    stats.fragments_generated += 1;

                    let z = tri.z[0] * w0 + tri.z[1] * w1 + tri.z[2] * w2;
                    if !depth.test_and_set(px, py, z) {
                        continue;
                    }
                    stats.fragments_shaded += 1;

                    // Perspective-correct UV and analytic derivatives.
                    let q = tri.inv_w[0] * w0 + tri.inv_w[1] * w1 + tri.inv_w[2] * w2;
                    let s =
                        tri.uv_over_w[0].x * w0 + tri.uv_over_w[1].x * w1 + tri.uv_over_w[2].x * w2;
                    let t =
                        tri.uv_over_w[0].y * w0 + tri.uv_over_w[1].y * w1 + tri.uv_over_w[2].y * w2;
                    let inv_q = 1.0 / q;
                    let uv = Vec2::new(s * inv_q, t * inv_q);
                    // d(s/q)/dx = (ds/dx * q - s * dq/dx) / q^2
                    let duv_dx = Vec2::new(
                        (grad_s.x * q - s * grad_inv_w.x) * inv_q * inv_q,
                        (grad_t.x * q - t * grad_inv_w.x) * inv_q * inv_q,
                    );
                    let duv_dy = Vec2::new(
                        (grad_s.y * q - s * grad_inv_w.y) * inv_q * inv_q,
                        (grad_t.y * q - t * grad_inv_w.y) * inv_q * inv_q,
                    );

                    fragments.push(Fragment {
                        x: px,
                        y: py,
                        depth: z,
                        uv,
                        duv_dx,
                        duv_dy,
                        material: tri.material,
                        primitive: tri.primitive,
                    });
                }
            }
        }

        if self.traversal == TraversalOrder::Morton {
            // Stable by Morton key: fragments at the same pixel keep their
            // submission order, so last-write-wins depth resolution holds.
            fragments.sort_by_key(|f| morton_key(f.x, f.y));
        }
        Tile {
            tx: bin.tx,
            ty: bin.ty,
            fragments,
        }
    }
}

/// Screen-space gradient `(d f/dx, d f/dy)` of a quantity linear over the
/// triangle, from its values at the three vertices.
fn linear_gradient(pos: &[Vec2; 3], f: &[f32; 3]) -> Vec2 {
    let e1 = pos[1] - pos[0];
    let e2 = pos[2] - pos[0];
    let det = e1.cross(e2);
    if det == 0.0 {
        return Vec2::ZERO;
    }
    let df1 = f[1] - f[0];
    let df2 = f[2] - f[0];
    Vec2::new(
        (df1 * e2.y - df2 * e1.y) / det,
        (df2 * e1.x - df1 * e2.x) / det,
    )
}

#[cfg(test)]
mod tests {
    // Tests may hash: iteration order is never observed in assertions.
    #![allow(clippy::disallowed_types)]
    use super::*;
    use patu_gmath::Vec3;

    /// A screen-filling wall facing the camera at z = -5.
    fn facing_wall(material: usize) -> Mesh {
        Mesh::quad(
            [
                Vec3::new(-10.0, -10.0, -5.0),
                Vec3::new(10.0, -10.0, -5.0),
                Vec3::new(10.0, 10.0, -5.0),
                Vec3::new(-10.0, 10.0, -5.0),
            ],
            Vec2::new(4.0, 4.0),
            material,
        )
    }

    /// A ground plane stretching to the horizon (high anisotropy).
    fn ground() -> Mesh {
        Mesh::quad(
            [
                Vec3::new(-50.0, 0.0, -0.5),
                Vec3::new(50.0, 0.0, -0.5),
                Vec3::new(50.0, 0.0, -200.0),
                Vec3::new(-50.0, 0.0, -200.0),
            ],
            Vec2::new(64.0, 256.0),
            0,
        )
    }

    fn camera() -> Camera {
        Camera::new(
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 1.0, -10.0),
            1.0,
            1.0,
        )
    }

    fn ground_camera() -> Camera {
        Camera::new(
            Vec3::new(0.0, 2.0, 0.0),
            Vec3::new(0.0, 0.0, -30.0),
            1.0,
            1.0,
        )
    }

    #[test]
    fn facing_wall_fills_viewport() {
        let out = Pipeline::new(64, 64).run(&[facing_wall(0)], &camera());
        assert_eq!(
            out.stats.fragments_shaded,
            64 * 64,
            "every pixel covered once"
        );
        assert_eq!(out.stats.triangles_in, 2);
    }

    #[test]
    fn back_face_is_culled() {
        // Reverse the winding by swapping two corners.
        let mut wall = facing_wall(0);
        wall.triangles = vec![[0, 2, 1], [0, 3, 2]];
        let out = Pipeline::new(64, 64).run(&[wall], &camera());
        assert_eq!(out.stats.fragments_shaded, 0);
        assert_eq!(out.stats.triangles_culled, 2);
    }

    #[test]
    fn offscreen_mesh_fully_clipped() {
        let wall = facing_wall(0)
            .with_transform(patu_gmath::Mat4::translation(Vec3::new(1000.0, 0.0, 0.0)));
        let out = Pipeline::new(64, 64).run(&[wall], &camera());
        assert_eq!(out.stats.triangles_clipped_out, 2);
        assert_eq!(out.stats.fragments_shaded, 0);
    }

    #[test]
    fn ground_plane_clips_against_near_and_renders() {
        let out = Pipeline::new(128, 128).run(&[ground()], &ground_camera());
        assert!(out.stats.fragments_shaded > 1000, "ground visible");
    }

    #[test]
    fn depth_test_keeps_closer_surface() {
        // Two walls: far wall first, near wall second; near must win everywhere.
        let far = facing_wall(0)
            .with_transform(patu_gmath::Mat4::translation(Vec3::new(0.0, 0.0, -10.0)));
        let near = facing_wall(1);
        let out = Pipeline::new(32, 32).run(&[far, near], &camera());
        // Every pixel gets two surviving fragments (far drawn first passes,
        // then near passes and overwrites in shading order).
        assert_eq!(out.stats.fragments_shaded, 2 * 32 * 32);
        // The *last* fragment at any pixel has material 1.
        let mut last_material = std::collections::HashMap::new();
        for f in out.fragments() {
            last_material.insert((f.x, f.y), f.material);
        }
        assert!(last_material.values().all(|&m| m == 1));
    }

    #[test]
    fn depth_test_rejects_farther_drawn_later() {
        let near = facing_wall(1);
        let far = facing_wall(0)
            .with_transform(patu_gmath::Mat4::translation(Vec3::new(0.0, 0.0, -10.0)));
        // Near drawn first: far fragments all fail early-Z.
        let out = Pipeline::new(32, 32).run(&[near, far], &camera());
        assert_eq!(out.stats.fragments_shaded, 32 * 32);
        assert!(out.fragments().all(|f| f.material == 1));
    }

    #[test]
    fn no_double_coverage_on_shared_diagonal() {
        // The quad's two triangles share an edge; fill rule must not shade
        // pixels on the diagonal twice.
        let out = Pipeline::new(64, 64).run(&[facing_wall(0)], &camera());
        let mut seen = std::collections::HashSet::new();
        for f in out.fragments() {
            assert!(
                seen.insert((f.x, f.y)),
                "pixel ({}, {}) shaded twice",
                f.x,
                f.y
            );
        }
    }

    #[test]
    fn uv_interpolation_spans_scale() {
        let out = Pipeline::new(64, 64).run(&[facing_wall(0)], &camera());
        let (mut min_u, mut max_u) = (f32::MAX, f32::MIN);
        for f in out.fragments() {
            min_u = min_u.min(f.uv.x);
            max_u = max_u.max(f.uv.x);
        }
        // The wall is UV-scaled 4x; visible portion spans a good part of it.
        assert!(max_u - min_u > 0.5, "span {min_u}..{max_u}");
        assert!(max_u <= 4.0 + 1e-3);
    }

    #[test]
    fn facing_wall_derivatives_isotropic() {
        let out = Pipeline::new(64, 64).run(&[facing_wall(0)], &camera());
        let f = out.fragments().next().unwrap();
        let ax = f.duv_dx.length();
        let ay = f.duv_dy.length();
        let ratio = ax.max(ay) / ax.min(ay).max(1e-9);
        assert!(
            ratio < 1.3,
            "screen-aligned wall is near-isotropic, ratio {ratio}"
        );
    }

    #[test]
    fn ground_plane_derivatives_anisotropic_far_away() {
        let out = Pipeline::new(128, 128).run(&[ground()], &ground_camera());
        // Take a fragment in the upper part of the ground (far away).
        let far_frag = out
            .fragments()
            .filter(|f| f.y > 40 && f.y < 60)
            .max_by(|a, b| a.y.cmp(&b.y))
            .expect("far fragments exist");
        let ax = far_frag.duv_dx.length();
        let ay = far_frag.duv_dy.length();
        let ratio = ay.max(ax) / ay.min(ax).max(1e-9);
        assert!(ratio > 2.0, "oblique ground is anisotropic, got {ratio}");
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let out = Pipeline::new(128, 128).run(&[ground()], &ground_camera());
        // Build a map for finite differencing.
        let mut by_pixel = std::collections::HashMap::new();
        for f in out.fragments() {
            by_pixel.insert((f.x, f.y), *f);
        }
        let mut checked = 0;
        for (&(x, y), f) in &by_pixel {
            if x == 0 || y == 0 {
                continue;
            }
            let neighbors = [
                by_pixel.get(&(x - 1, y)),
                by_pixel.get(&(x + 1, y)),
                by_pixel.get(&(x, y - 1)),
                by_pixel.get(&(x, y + 1)),
            ];
            let [Some(xl), Some(xr), Some(yu), Some(yd)] = neighbors else {
                continue;
            };
            if [xl, xr, yu, yd].iter().any(|n| n.primitive != f.primitive) {
                continue;
            }
            // Central differences; skip pixels where perspective curvature is
            // strong (forward/backward secants disagree) — near the horizon
            // the derivative legitimately changes by large factors per pixel.
            let fwd_dy = yd.uv - f.uv;
            let bwd_dy = f.uv - yu.uv;
            if (fwd_dy - bwd_dy).length() > 0.2 * fwd_dy.length().max(bwd_dy.length()) {
                continue;
            }
            let fd_dx = (xr.uv - xl.uv) * 0.5;
            let fd_dy = (yd.uv - yu.uv) * 0.5;
            if fd_dx.length() > 1e-4 {
                let err = (f.duv_dx - fd_dx).length() / fd_dx.length();
                assert!(err < 0.2, "dx err {err} at ({x},{y})");
            }
            if fd_dy.length() > 1e-4 {
                let err = (f.duv_dy - fd_dy).length() / fd_dy.length();
                assert!(err < 0.2, "dy err {err} at ({x},{y})");
            }
            checked += 1;
            if checked > 500 {
                break;
            }
        }
        assert!(checked > 50, "enough interior pixels compared");
    }

    #[test]
    fn tiles_are_row_major_and_within_bounds() {
        let out = Pipeline::new(70, 50).run(&[facing_wall(0)], &camera());
        let mut last = None;
        for t in &out.tiles {
            assert!(t.tx * 16 < 70 && t.ty * 16 < 50);
            let key = (t.ty, t.tx);
            if let Some(prev) = last {
                assert!(key > prev, "row-major tile order");
            }
            last = Some(key);
        }
    }

    #[test]
    fn fragments_stay_inside_their_tile() {
        let out = Pipeline::new(64, 64).run(&[facing_wall(0)], &camera());
        for t in &out.tiles {
            for f in &t.fragments {
                assert!(f.x >= t.tx * 16 && f.x < (t.tx + 1) * 16);
                assert!(f.y >= t.ty * 16 && f.y < (t.ty + 1) * 16);
            }
        }
    }

    #[test]
    fn morton_key_interleaves() {
        assert_eq!(morton_key(0, 0), 0);
        assert_eq!(morton_key(1, 0), 1);
        assert_eq!(morton_key(0, 1), 2);
        assert_eq!(morton_key(1, 1), 3);
        assert_eq!(morton_key(2, 0), 4);
        assert_eq!(morton_key(3, 3), 15);
    }

    #[test]
    fn morton_traversal_preserves_pixel_set_and_last_write() {
        let far = facing_wall(0)
            .with_transform(patu_gmath::Mat4::translation(Vec3::new(0.0, 0.0, -10.0)));
        let near = facing_wall(1);
        let meshes = vec![far, near];
        let row = Pipeline::new(64, 64).run(&meshes, &camera());
        let morton = Pipeline::new(64, 64)
            .with_traversal(TraversalOrder::Morton)
            .run(&meshes, &camera());
        // Same statistics, same covered pixels.
        assert_eq!(row.stats, morton.stats);
        let pixset = |out: &GeometryOutput| {
            let mut v: Vec<(u32, u32)> = out.fragments().map(|f| (f.x, f.y)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(pixset(&row), pixset(&morton));
        // Last write at each pixel is still the near wall.
        let mut last = std::collections::HashMap::new();
        for f in morton.fragments() {
            last.insert((f.x, f.y), f.material);
        }
        assert!(
            last.values().all(|&m| m == 1),
            "Morton sort is stable per pixel"
        );
    }

    #[test]
    fn morton_order_is_spatially_clustered() {
        let out = Pipeline::new(64, 64)
            .with_traversal(TraversalOrder::Morton)
            .run(&[facing_wall(0)], &camera());
        // Mean Manhattan distance between consecutive fragments is smaller
        // under Morton than under row-major (which jumps at row ends).
        let dist = |out: &GeometryOutput| {
            let frags: Vec<_> = out.tiles[0].fragments.iter().collect();
            let mut sum = 0u64;
            for w in frags.windows(2) {
                sum += u64::from(w[0].x.abs_diff(w[1].x) + w[0].y.abs_diff(w[1].y));
            }
            sum as f64 / (frags.len() - 1) as f64
        };
        let row = Pipeline::new(64, 64).run(&[facing_wall(0)], &camera());
        assert!(dist(&out) <= dist(&row) + 1e-9);
    }

    #[test]
    fn linear_gradient_of_plane() {
        let pos = [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 1.0),
        ];
        // f = 3x + 5y + 2
        let f = [2.0, 5.0, 7.0];
        let g = linear_gradient(&pos, &f);
        assert!((g.x - 3.0).abs() < 1e-6);
        assert!((g.y - 5.0).abs() < 1e-6);
    }

    #[test]
    fn empty_scene_renders_nothing() {
        let out = Pipeline::new(16, 16).run(&[], &camera());
        assert!(out.tiles.is_empty());
        assert_eq!(out.stats.fragments_generated, 0);
    }

    #[test]
    fn geometry_counters_export_to_telemetry() {
        use patu_obs::{Collector, FrameTelemetry, TelemetryConfig, TraceLevel, Track};
        let out = Pipeline::new(64, 64).run(&[facing_wall(0)], &camera());
        let mut c = Collector::new(
            TelemetryConfig::with_level(TraceLevel::Counters),
            Track::Frontend,
        );
        out.stats.export_counters(&mut c);
        let mut frame = FrameTelemetry::new(TraceLevel::Counters, 0, "p".into(), 0);
        frame.absorb(c);
        assert_eq!(frame.counters["geom::fragments_shaded"], 64 * 64);
        assert_eq!(frame.counters["geom::triangles_in"], 2);
        assert_eq!(frame.counters["geom::vertices"], 4);
        assert!(frame.counters["geom::tiles_covered"] > 0);
    }

    #[test]
    fn vertex_count_accumulates_across_meshes() {
        let out = Pipeline::new(16, 16).run(&[facing_wall(0), facing_wall(1)], &camera());
        assert_eq!(out.stats.vertices_processed, 8);
    }
}
