//! Vertices, meshes and materials consumed by the pipeline.

use patu_gmath::{Mat4, Vec2, Vec3};

/// A vertex with position and texture coordinates — the attributes the
/// paper's *Vertex Processing* stage computes (position, color, texture
/// coordinate; we fold color into a per-mesh tint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vertex {
    /// Object-space position.
    pub position: Vec3,
    /// Texture coordinates (may exceed `[0,1]` for tiled surfaces).
    pub uv: Vec2,
}

impl Vertex {
    /// Creates a vertex.
    pub const fn new(position: Vec3, uv: Vec2) -> Vertex {
        Vertex { position, uv }
    }
}

/// An indexed triangle mesh bound to one material (texture slot).
///
/// ```
/// use patu_raster::{Mesh, Vertex};
/// use patu_gmath::{Vec2, Vec3};
/// let quad = Mesh::quad(
///     [
///         Vec3::new(0.0, 0.0, 0.0),
///         Vec3::new(1.0, 0.0, 0.0),
///         Vec3::new(1.0, 1.0, 0.0),
///         Vec3::new(0.0, 1.0, 0.0),
///     ],
///     Vec2::new(4.0, 4.0),
///     2,
/// );
/// assert_eq!(quad.triangles.len(), 2);
/// assert_eq!(quad.material, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    /// Vertex pool.
    pub vertices: Vec<Vertex>,
    /// Counter-clockwise indexed triangles into [`Mesh::vertices`].
    pub triangles: Vec<[u32; 3]>,
    /// Material slot: an index into the scene's texture table.
    pub material: usize,
    /// Object-to-world transform applied by vertex processing.
    pub transform: Mat4,
}

impl Mesh {
    /// Creates a mesh with an identity transform.
    ///
    /// # Panics
    ///
    /// Panics if any triangle index is out of bounds.
    pub fn new(vertices: Vec<Vertex>, triangles: Vec<[u32; 3]>, material: usize) -> Mesh {
        let n = vertices.len() as u32;
        for t in &triangles {
            assert!(
                t.iter().all(|&i| i < n),
                "triangle index out of bounds: {t:?} with {n} vertices"
            );
        }
        Mesh {
            vertices,
            triangles,
            material,
            transform: Mat4::IDENTITY,
        }
    }

    /// Sets the object-to-world transform, consuming and returning the mesh.
    #[must_use]
    pub fn with_transform(mut self, transform: Mat4) -> Mesh {
        self.transform = transform;
        self
    }

    /// Convenience: a two-triangle quad from four corners (counter-clockwise
    /// when viewed from the front), UV-tiled `uv_scale` times across it.
    pub fn quad(corners: [Vec3; 4], uv_scale: Vec2, material: usize) -> Mesh {
        let uvs = [
            Vec2::new(0.0, 0.0),
            Vec2::new(uv_scale.x, 0.0),
            Vec2::new(uv_scale.x, uv_scale.y),
            Vec2::new(0.0, uv_scale.y),
        ];
        let vertices = corners
            .iter()
            .zip(uvs)
            .map(|(&p, uv)| Vertex::new(p, uv))
            .collect();
        Mesh::new(vertices, vec![[0, 1, 2], [0, 2, 3]], material)
    }

    /// Total triangle count.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_has_two_ccw_triangles() {
        let q = Mesh::quad(
            [
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(1.0, 1.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
            ],
            Vec2::ONE,
            0,
        );
        assert_eq!(q.triangle_count(), 2);
        assert_eq!(q.vertices.len(), 4);
        // Shared diagonal 0-2.
        assert_eq!(q.triangles[0], [0, 1, 2]);
        assert_eq!(q.triangles[1], [0, 2, 3]);
    }

    #[test]
    fn quad_uv_tiling() {
        let q = Mesh::quad(
            [Vec3::ZERO, Vec3::ZERO, Vec3::ZERO, Vec3::ZERO],
            Vec2::new(8.0, 2.0),
            0,
        );
        assert_eq!(q.vertices[2].uv, Vec2::new(8.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_index_panics() {
        let _ = Mesh::new(
            vec![Vertex::new(Vec3::ZERO, Vec2::ZERO)],
            vec![[0, 1, 2]],
            0,
        );
    }

    #[test]
    fn with_transform_sets_transform() {
        let m = Mesh::new(vec![], vec![], 0)
            .with_transform(Mat4::translation(Vec3::new(1.0, 0.0, 0.0)));
        assert_eq!(m.transform.cols[3][0], 1.0);
    }
}
