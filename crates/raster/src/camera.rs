//! Camera state: view and projection matrices.

use patu_gmath::{Mat4, Vec3};

/// A perspective camera.
///
/// ```
/// use patu_raster::Camera;
/// use patu_gmath::Vec3;
/// let cam = Camera::new(
///     Vec3::new(0.0, 2.0, 5.0),
///     Vec3::ZERO,
///     60f32.to_radians(),
///     16.0 / 9.0,
/// );
/// let vp = cam.view_projection();
/// let clip = vp * Vec3::ZERO.extend(1.0);
/// assert!(clip.w > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Eye position in world space.
    pub eye: Vec3,
    /// Point the camera looks at.
    pub target: Vec3,
    /// World-space up hint.
    pub up: Vec3,
    /// Vertical field of view in radians.
    pub fovy: f32,
    /// Viewport aspect ratio (width / height).
    pub aspect: f32,
    /// Near clip distance.
    pub near: f32,
    /// Far clip distance.
    pub far: f32,
}

impl Camera {
    /// Creates a camera with default near/far planes (0.1 / 500).
    pub fn new(eye: Vec3, target: Vec3, fovy: f32, aspect: f32) -> Camera {
        Camera {
            eye,
            target,
            up: Vec3::UP,
            fovy,
            aspect,
            near: 0.1,
            far: 500.0,
        }
    }

    /// Sets custom clip distances, consuming and returning the camera.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `near <= 0` or `far <= near` (checked when
    /// the projection matrix is built).
    #[must_use]
    pub fn with_clip(mut self, near: f32, far: f32) -> Camera {
        self.near = near;
        self.far = far;
        self
    }

    /// The world-to-view matrix.
    pub fn view(&self) -> Mat4 {
        Mat4::look_at(self.eye, self.target, self.up)
    }

    /// The view-to-clip projection matrix.
    pub fn projection(&self) -> Mat4 {
        Mat4::perspective(self.fovy, self.aspect, self.near, self.far)
    }

    /// The combined world-to-clip matrix.
    pub fn view_projection(&self) -> Mat4 {
        self.projection() * self.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patu_gmath::Frustum;

    #[test]
    fn target_is_visible() {
        let cam = Camera::new(Vec3::new(0.0, 1.0, 5.0), Vec3::ZERO, 1.0, 1.0);
        let clip = cam.view_projection() * Vec3::ZERO.extend(1.0);
        assert!(Frustum::contains(clip), "look-at target must be in frustum");
    }

    #[test]
    fn point_behind_camera_is_clipped() {
        let cam = Camera::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 1.0, 1.0);
        let behind = cam.view_projection() * Vec3::new(0.0, 0.0, 10.0).extend(1.0);
        assert!(!Frustum::contains(behind));
    }

    #[test]
    fn with_clip_overrides_planes() {
        let cam = Camera::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0), 1.0, 1.0).with_clip(1.0, 10.0);
        assert_eq!(cam.near, 1.0);
        assert_eq!(cam.far, 10.0);
    }
}
