//! # patu-raster
//!
//! A tile-based software rasterization pipeline modeling the 3D-rendering
//! architecture of the PATU paper's Fig. 2 (HPCA 2018): vertex processing,
//! clipping, face culling, a tiling engine, rasterization, early depth test,
//! and fragment generation.
//!
//! The pipeline is *functional* — it produces exact fragments with
//! perspective-correct attributes and analytic UV derivatives — while leaving
//! texture filtering and timing to downstream crates:
//!
//! * [`mesh`] — vertices, triangles, materials.
//! * [`camera`] — view/projection state.
//! * [`pipeline`] — the geometry front-end: transforms, clips, culls, bins
//!   triangles into tiles, rasterizes with early-Z, and emits per-tile
//!   [`fragment::Fragment`] streams carrying everything a texture unit needs
//!   (UV, `dUV/dx`, `dUV/dy`).
//! * [`framebuffer`] — color/depth targets and PPM output.
//!
//! Fragments carry their 2×2 quad coordinates: modern GPUs (and the paper's
//! texture unit, Sec. V-B) process pixels in quads under SIMD, and PATU's
//! per-pixel predictions can *diverge* within a quad (Sec. V-C(1)) — the
//! simulator measures that divergence downstream.
//!
//! # Examples
//!
//! ```
//! use patu_raster::{Camera, Mesh, Pipeline, Vertex};
//! use patu_gmath::{Vec2, Vec3};
//!
//! // A floor quad stretching away from the camera, textured with material 0.
//! let mesh = Mesh::new(
//!     vec![
//!         Vertex::new(Vec3::new(-10.0, 0.0, -1.0), Vec2::new(0.0, 0.0)),
//!         Vertex::new(Vec3::new(10.0, 0.0, -1.0), Vec2::new(8.0, 0.0)),
//!         Vertex::new(Vec3::new(10.0, 0.0, -60.0), Vec2::new(8.0, 48.0)),
//!         Vertex::new(Vec3::new(-10.0, 0.0, -60.0), Vec2::new(0.0, 48.0)),
//!     ],
//!     vec![[0, 1, 2], [0, 2, 3]],
//!     0,
//! );
//! let camera = Camera::new(
//!     Vec3::new(0.0, 1.5, 0.0),
//!     Vec3::new(0.0, 0.0, -20.0),
//!     60f32.to_radians(),
//!     640.0 / 480.0,
//! );
//! let pipeline = Pipeline::new(640, 480);
//! let out = pipeline.run(&[mesh], &camera);
//! assert!(out.stats.fragments_shaded > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod camera;
pub mod clip;
pub mod fragment;
pub mod framebuffer;
pub mod mesh;
pub mod pipeline;
pub mod tiler;

pub use camera::Camera;
pub use fragment::{Fragment, QuadId};
pub use framebuffer::{DepthBuffer, Framebuffer};
pub use mesh::{Mesh, Vertex};
pub use pipeline::{GeometryOutput, GeometryStats, Pipeline, Tile, TraversalOrder};

/// Tile edge length in pixels, per the paper's baseline configuration
/// (Table I: 16×16 tile size).
pub const TILE_SIZE: u32 = 16;
