//! Fragments: the per-pixel output of rasterization.

use patu_gmath::Vec2;

/// Identifier of the 2×2 pixel quad a fragment belongs to.
///
/// Texture units process pixels in quads under SIMD (paper Sec. V-B); PATU's
/// per-pixel predictions may diverge within a quad (Sec. V-C(1)), which the
/// simulator tracks by grouping fragments on this key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QuadId {
    /// Quad column (`pixel_x / 2`).
    pub qx: u32,
    /// Quad row (`pixel_y / 2`).
    pub qy: u32,
}

impl QuadId {
    /// The quad containing pixel `(x, y)`.
    #[inline]
    pub const fn of_pixel(x: u32, y: u32) -> QuadId {
        QuadId {
            qx: x / 2,
            qy: y / 2,
        }
    }
}

/// A shaded-visible fragment: one pixel of one triangle that survived the
/// early depth test, carrying perspective-correct texture coordinates and
/// their analytic screen-space derivatives.
///
/// The derivative pair (`duv_dx`, `duv_dy`) is exactly what the *Texel
/// Generation* stage needs to build the sampling footprint (anisotropy `N`
/// and LODs) — see `patu_texture::Footprint::from_derivatives`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fragment {
    /// Pixel column.
    pub x: u32,
    /// Pixel row.
    pub y: u32,
    /// Normalized device depth in `[-1, 1]` (smaller = closer).
    pub depth: f32,
    /// Perspective-correct texture coordinates.
    pub uv: Vec2,
    /// UV change per one-pixel step along screen X.
    pub duv_dx: Vec2,
    /// UV change per one-pixel step along screen Y.
    pub duv_dy: Vec2,
    /// Material slot of the owning mesh.
    pub material: usize,
    /// Sequential id of the source triangle within the frame (post-clipping).
    pub primitive: u32,
}

impl Fragment {
    /// The quad this fragment belongs to.
    #[inline]
    pub fn quad(&self) -> QuadId {
        QuadId::of_pixel(self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_id_groups_2x2() {
        assert_eq!(QuadId::of_pixel(0, 0), QuadId::of_pixel(1, 1));
        assert_eq!(QuadId::of_pixel(2, 0), QuadId { qx: 1, qy: 0 });
        assert_ne!(QuadId::of_pixel(1, 1), QuadId::of_pixel(2, 1));
    }

    #[test]
    fn fragment_quad_accessor() {
        let f = Fragment {
            x: 5,
            y: 9,
            depth: 0.0,
            uv: Vec2::ZERO,
            duv_dx: Vec2::ZERO,
            duv_dy: Vec2::ZERO,
            material: 0,
            primitive: 0,
        };
        assert_eq!(f.quad(), QuadId { qx: 2, qy: 4 });
    }
}
