//! The tiling engine: bins screen-space triangles into fixed-size tiles.
//!
//! Mirrors the paper's *Tiling Engine* (Sec. II-A): triangles are sorted into
//! tiles by position so each tile's pixels fit in on-chip memory; tiles are
//! then scheduled as the basic execution units of fragment processing.

use patu_gmath::{Aabb2, Vec2};

/// A triangle in screen space, ready for rasterization.
///
/// Positions are pixel coordinates; `inv_w` and `uv_over_w` carry the
/// perspective-correct interpolation setup (`1/w` and `uv/w` are linear in
/// screen space).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenTriangle {
    /// Screen-space vertex positions (pixels).
    pub pos: [Vec2; 3],
    /// Normalized-device depth at each vertex.
    pub z: [f32; 3],
    /// `1/w` at each vertex.
    pub inv_w: [f32; 3],
    /// `uv/w` at each vertex.
    pub uv_over_w: [Vec2; 3],
    /// Material slot.
    pub material: usize,
    /// Frame-sequential primitive id.
    pub primitive: u32,
}

impl ScreenTriangle {
    /// Screen-space bounding box of the triangle.
    pub fn bounds(&self) -> Aabb2 {
        let mut bb = Aabb2::empty();
        for p in self.pos {
            bb.grow(p);
        }
        bb
    }
}

/// One tile's worth of binned triangle indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileBin {
    /// Tile column.
    pub tx: u32,
    /// Tile row.
    pub ty: u32,
    /// Indices into the frame's screen-triangle list, in submission order.
    pub triangles: Vec<usize>,
}

impl TileBin {
    /// Pixel X of the tile's left edge.
    pub fn x0(&self, tile_size: u32) -> u32 {
        self.tx * tile_size
    }

    /// Pixel Y of the tile's top edge.
    pub fn y0(&self, tile_size: u32) -> u32 {
        self.ty * tile_size
    }
}

/// Bins triangles into `tile_size`-square tiles covering a
/// `width` × `height` viewport.
///
/// Only tiles overlapped by at least one triangle's bounding box are
/// returned, in row-major order. Triangle order within a tile preserves
/// submission order (required for correct depth resolution downstream).
///
/// # Panics
///
/// Panics if `tile_size` is zero or the viewport is empty.
pub fn bin_triangles(
    triangles: &[ScreenTriangle],
    width: u32,
    height: u32,
    tile_size: u32,
) -> Vec<TileBin> {
    assert!(tile_size > 0, "tile size must be positive");
    assert!(width > 0 && height > 0, "viewport must be non-empty");
    let tiles_x = width.div_ceil(tile_size);
    let tiles_y = height.div_ceil(tile_size);
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); (tiles_x * tiles_y) as usize];

    let viewport = Aabb2::new(
        Vec2::ZERO,
        Vec2::new(width as f32 - 1.0, height as f32 - 1.0),
    );
    for (idx, tri) in triangles.iter().enumerate() {
        let Some(bb) = tri.bounds().intersection(&viewport) else {
            continue;
        };
        let tx0 = (bb.min.x as u32) / tile_size;
        let ty0 = (bb.min.y as u32) / tile_size;
        let tx1 = (bb.max.x as u32).min(width - 1) / tile_size;
        let ty1 = (bb.max.y as u32).min(height - 1) / tile_size;
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                bins[(ty * tiles_x + tx) as usize].push(idx);
            }
        }
    }

    let mut out = Vec::new();
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let tris = std::mem::take(&mut bins[(ty * tiles_x + tx) as usize]);
            if !tris.is_empty() {
                out.push(TileBin {
                    tx,
                    ty,
                    triangles: tris,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(x0: f32, y0: f32, x1: f32, y1: f32, x2: f32, y2: f32) -> ScreenTriangle {
        ScreenTriangle {
            pos: [Vec2::new(x0, y0), Vec2::new(x1, y1), Vec2::new(x2, y2)],
            z: [0.0; 3],
            inv_w: [1.0; 3],
            uv_over_w: [Vec2::ZERO; 3],
            material: 0,
            primitive: 0,
        }
    }

    #[test]
    fn small_triangle_lands_in_one_tile() {
        let bins = bin_triangles(&[tri(1.0, 1.0, 5.0, 1.0, 1.0, 5.0)], 64, 64, 16);
        assert_eq!(bins.len(), 1);
        assert_eq!((bins[0].tx, bins[0].ty), (0, 0));
    }

    #[test]
    fn large_triangle_covers_multiple_tiles() {
        let bins = bin_triangles(&[tri(0.0, 0.0, 63.0, 0.0, 0.0, 63.0)], 64, 64, 16);
        assert_eq!(bins.len(), 16, "bbox covers all 4x4 tiles");
    }

    #[test]
    fn offscreen_triangle_binned_nowhere() {
        let bins = bin_triangles(
            &[tri(-100.0, -100.0, -50.0, -100.0, -100.0, -50.0)],
            64,
            64,
            16,
        );
        assert!(bins.is_empty());
    }

    #[test]
    fn straddling_triangle_clamped_to_viewport() {
        let bins = bin_triangles(&[tri(60.0, 60.0, 200.0, 60.0, 60.0, 200.0)], 64, 64, 16);
        assert!(!bins.is_empty());
        for b in &bins {
            assert!(b.tx < 4 && b.ty < 4);
        }
    }

    #[test]
    fn submission_order_preserved_within_tile() {
        let t0 = tri(1.0, 1.0, 5.0, 1.0, 1.0, 5.0);
        let t1 = tri(2.0, 2.0, 6.0, 2.0, 2.0, 6.0);
        let bins = bin_triangles(&[t0, t1], 64, 64, 16);
        assert_eq!(bins[0].triangles, vec![0, 1]);
    }

    #[test]
    fn tiles_row_major_order() {
        let tris = [
            tri(40.0, 40.0, 44.0, 40.0, 40.0, 44.0), // tile (2,2)
            tri(1.0, 40.0, 4.0, 40.0, 1.0, 44.0),    // tile (0,2)
            tri(40.0, 1.0, 44.0, 1.0, 40.0, 4.0),    // tile (2,0)
        ];
        let bins = bin_triangles(&tris, 64, 64, 16);
        let coords: Vec<(u32, u32)> = bins.iter().map(|b| (b.tx, b.ty)).collect();
        assert_eq!(coords, vec![(2, 0), (0, 2), (2, 2)]);
    }

    #[test]
    fn tile_origin_helpers() {
        let b = TileBin {
            tx: 3,
            ty: 2,
            triangles: vec![],
        };
        assert_eq!(b.x0(16), 48);
        assert_eq!(b.y0(16), 32);
    }

    #[test]
    fn non_multiple_viewport_has_partial_edge_tiles() {
        // 70x70 viewport, 16px tiles -> 5x5 grid; a triangle in the last sliver.
        let bins = bin_triangles(&[tri(65.0, 65.0, 69.0, 65.0, 65.0, 69.0)], 70, 70, 16);
        assert_eq!(bins.len(), 1);
        assert_eq!((bins[0].tx, bins[0].ty), (4, 4));
    }
}
