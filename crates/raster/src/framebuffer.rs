//! Color and depth render targets.

use patu_texture::Rgba8;
use std::io::{self, Write};

/// An RGBA8 color buffer.
///
/// ```
/// use patu_raster::Framebuffer;
/// use patu_texture::Rgba8;
/// let mut fb = Framebuffer::new(4, 4, Rgba8::BLACK);
/// fb.put(1, 2, Rgba8::WHITE);
/// assert_eq!(fb.get(1, 2), Rgba8::WHITE);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    pixels: Vec<Rgba8>,
}

impl Framebuffer {
    /// Creates a buffer cleared to `clear_color`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32, clear_color: Rgba8) -> Framebuffer {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        Framebuffer {
            width,
            height,
            pixels: vec![clear_color; (width as usize) * (height as usize)],
        }
    }

    /// Buffer width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Buffer height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgba8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[(y as usize) * (self.width as usize) + x as usize]
    }

    /// Writes pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn put(&mut self, x: u32, y: u32, c: Rgba8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[(y as usize) * (self.width as usize) + x as usize] = c;
    }

    /// All pixels in row-major order.
    pub fn pixels(&self) -> &[Rgba8] {
        &self.pixels
    }

    /// Copies the axis-aligned rectangle `[x0, x0+w) × [y0, y0+h)` from
    /// `src`, which must have the same dimensions. This is the parallel
    /// renderer's tile stitch: each worker renders its disjoint tiles into a
    /// private buffer and the merged frame copies the rects back row by row.
    ///
    /// # Panics
    ///
    /// Panics if the buffers differ in size or the rectangle is out of
    /// bounds.
    pub fn copy_rect_from(&mut self, src: &Framebuffer, x0: u32, y0: u32, w: u32, h: u32) {
        assert_eq!(self.width, src.width, "framebuffer widths differ");
        assert_eq!(self.height, src.height, "framebuffer heights differ");
        assert!(
            x0.checked_add(w).is_some_and(|x1| x1 <= self.width)
                && y0.checked_add(h).is_some_and(|y1| y1 <= self.height),
            "rect out of bounds"
        );
        for y in y0..y0 + h {
            let row = (y as usize) * (self.width as usize);
            let (lo, hi) = (row + x0 as usize, row + (x0 + w) as usize);
            self.pixels[lo..hi].copy_from_slice(&src.pixels[lo..hi]);
        }
    }

    /// Per-pixel Rec. 601 luma plane, the input to SSIM.
    pub fn luma_plane(&self) -> Vec<f32> {
        self.pixels.iter().map(|p| p.luma()).collect()
    }

    /// Serializes as binary PPM (P6) for eyeballing frames.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_ppm<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "P6\n{} {}\n255", self.width, self.height)?;
        for p in &self.pixels {
            w.write_all(&[p.r, p.g, p.b])?;
        }
        Ok(())
    }
}

/// A floating-point depth buffer with a standard less-than depth test.
///
/// Depth values are normalized-device-coordinate Z in `[-1, 1]`; the buffer
/// clears to `1.0` (far plane).
#[derive(Debug, Clone, PartialEq)]
pub struct DepthBuffer {
    width: u32,
    height: u32,
    depths: Vec<f32>,
}

impl DepthBuffer {
    /// Creates a buffer cleared to the far plane.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> DepthBuffer {
        assert!(width > 0 && height > 0, "depth buffer must be non-empty");
        DepthBuffer {
            width,
            height,
            depths: vec![1.0; (width as usize) * (height as usize)],
        }
    }

    /// Depth at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.width && y < self.height);
        self.depths[(y as usize) * (self.width as usize) + x as usize]
    }

    /// The early depth test: if `depth` is closer than the stored value,
    /// stores it and returns `true` (fragment survives); otherwise returns
    /// `false` (fragment is discarded).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn test_and_set(&mut self, x: u32, y: u32, depth: f32) -> bool {
        assert!(x < self.width && y < self.height);
        let idx = (y as usize) * (self.width as usize) + x as usize;
        if depth < self.depths[idx] {
            self.depths[idx] = depth;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framebuffer_clear_and_put() {
        let mut fb = Framebuffer::new(3, 2, Rgba8::BLACK);
        assert_eq!(fb.get(2, 1), Rgba8::BLACK);
        fb.put(2, 1, Rgba8::WHITE);
        assert_eq!(fb.get(2, 1), Rgba8::WHITE);
        assert_eq!(fb.pixels().len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn framebuffer_oob_panics() {
        let fb = Framebuffer::new(2, 2, Rgba8::BLACK);
        let _ = fb.get(2, 0);
    }

    #[test]
    fn copy_rect_stitches_disjoint_regions() {
        let mut merged = Framebuffer::new(4, 4, Rgba8::BLACK);
        let mut left = Framebuffer::new(4, 4, Rgba8::BLACK);
        let mut right = Framebuffer::new(4, 4, Rgba8::BLACK);
        left.put(0, 1, Rgba8::WHITE);
        right.put(3, 2, Rgba8::rgb(9, 9, 9));
        right.put(0, 0, Rgba8::rgb(1, 1, 1)); // outside its rect: must not leak
        merged.copy_rect_from(&left, 0, 0, 2, 4);
        merged.copy_rect_from(&right, 2, 0, 2, 4);
        assert_eq!(merged.get(0, 1), Rgba8::WHITE);
        assert_eq!(merged.get(3, 2), Rgba8::rgb(9, 9, 9));
        assert_eq!(merged.get(0, 0), Rgba8::BLACK, "out-of-rect pixels ignored");
    }

    #[test]
    #[should_panic(expected = "rect out of bounds")]
    fn copy_rect_rejects_oob() {
        let mut a = Framebuffer::new(4, 4, Rgba8::BLACK);
        let b = Framebuffer::new(4, 4, Rgba8::BLACK);
        a.copy_rect_from(&b, 2, 0, 3, 1);
    }

    #[test]
    fn luma_plane_matches_pixels() {
        let mut fb = Framebuffer::new(2, 1, Rgba8::BLACK);
        fb.put(1, 0, Rgba8::WHITE);
        let luma = fb.luma_plane();
        assert_eq!(luma[0], 0.0);
        assert!(luma[1] > 254.0);
    }

    #[test]
    fn ppm_header_and_length() {
        let fb = Framebuffer::new(4, 2, Rgba8::rgb(1, 2, 3));
        let mut buf = Vec::new();
        fb.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n4 2\n255\n"));
        assert_eq!(buf.len(), b"P6\n4 2\n255\n".len() + 4 * 2 * 3);
    }

    #[test]
    fn depth_test_closer_wins() {
        let mut db = DepthBuffer::new(2, 2);
        assert!(db.test_and_set(0, 0, 0.5));
        assert!(!db.test_and_set(0, 0, 0.7), "farther fragment rejected");
        assert!(db.test_and_set(0, 0, 0.2), "closer fragment accepted");
        assert_eq!(db.get(0, 0), 0.2);
    }

    #[test]
    fn depth_equal_rejected() {
        let mut db = DepthBuffer::new(1, 1);
        assert!(db.test_and_set(0, 0, 0.5));
        assert!(!db.test_and_set(0, 0, 0.5), "LESS test: equal depth fails");
    }
}
