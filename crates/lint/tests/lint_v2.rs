//! Integration tests of the v2 interprocedural pipeline on temp-tree
//! workspaces: cross-crate taint, knob reachability, schema sync, autofix
//! idempotence, the incremental cache, and SARIF output — all through the
//! public [`patu_lint::run_with`] entry point.

use patu_lint::Options;
use std::path::{Path, PathBuf};

/// Builds a throwaway workspace under `CARGO_TARGET_TMPDIR` from
/// `(relative path, contents)` pairs.
fn tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale temp tree");
    }
    for (rel, contents) in files {
        let full = dir.join(rel);
        std::fs::create_dir_all(full.parent().expect("parent")).expect("mkdirs");
        std::fs::write(full, contents).expect("write fixture file");
    }
    dir
}

const WORKSPACE_TOML: &str = "[workspace]\nmembers = [\"crates/*\"]\n";

fn package_toml(name: &str, deps: &str) -> String {
    format!("[package]\nname = \"{name}\"\nversion = \"0.1.0\"\n\n[dependencies]\n{deps}")
}

fn rules_of(diags: &[patu_lint::Diagnostic]) -> Vec<(&'static str, String, u32)> {
    diags
        .iter()
        .map(|d| (d.rule, d.path.clone(), d.line))
        .collect()
}

#[test]
fn cross_crate_rng_taint_flags_the_call_site() {
    let dir = tree(
        "patu_lint_v2_rng",
        &[
            ("Cargo.toml", WORKSPACE_TOML),
            ("crates/alpha/Cargo.toml", &package_toml("patu-alpha", "")),
            (
                "crates/alpha/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 use patu_sim::parallel;\n\
                 use patu_gmath::DetRng;\n\
                 \n\
                 pub fn draws(rng: &mut DetRng) -> Vec<u64> {\n\
                 \x20   parallel::run_indexed(4, 8, |i| rng.next_u64() + i as u64)\n\
                 }\n",
            ),
            (
                "crates/beta/Cargo.toml",
                &package_toml("patu-beta", "patu-alpha = { path = \"../alpha\" }\n"),
            ),
            (
                "crates/beta/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 use patu_alpha::draws;\n\
                 use patu_gmath::DetRng;\n\
                 \n\
                 pub fn go(seed: u64) -> Vec<u64> {\n\
                 \x20   let mut rng = DetRng::new(seed);\n\
                 \x20   draws(&mut rng)\n\
                 }\n",
            ),
        ],
    );
    let diags = patu_lint::run(&dir).expect("lint temp tree");
    assert_eq!(
        rules_of(&diags),
        vec![(
            "det-rng-discipline",
            "crates/beta/src/lib.rs".to_string(),
            7
        )],
        "the call site passing a live stream into a partitioned callee must \
         be flagged, and nothing else"
    );
}

#[test]
fn knob_reachability_crosses_crates() {
    let dir = tree(
        "patu_lint_v2_knob",
        &[
            ("Cargo.toml", WORKSPACE_TOML),
            ("crates/alpha/Cargo.toml", &package_toml("patu-alpha", "")),
            (
                "crates/alpha/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn helper(n: u32) -> u32 {\n\
                 \x20   let raw = std::env::var(\"PATU_TEMP_KNOB\").ok();\n\
                 \x20   raw.map_or(n, |v| v.len() as u32)\n\
                 }\n",
            ),
            (
                "crates/beta/Cargo.toml",
                &package_toml("patu-beta", "patu-alpha = { path = \"../alpha\" }\n"),
            ),
            (
                "crates/beta/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn render_frame(n: u32) -> u32 {\n\
                 \x20   patu_alpha::helper(n)\n\
                 }\n",
            ),
        ],
    );
    let diags = patu_lint::run(&dir).expect("lint temp tree");
    let alpha = "crates/alpha/src/lib.rs".to_string();
    assert_eq!(
        rules_of(&diags),
        vec![
            ("env-var", alpha.clone(), 3),
            ("knob-at-construction", alpha, 3),
        ],
        "an env read one crate away from render_frame gets both the plain \
         env-var diagnostic and the reachability one"
    );
}

#[test]
fn schema_sync_checks_both_directions_across_crates() {
    let dir = tree(
        "patu_lint_v2_schema",
        &[
            ("Cargo.toml", WORKSPACE_TOML),
            ("crates/alpha/Cargo.toml", &package_toml("patu-alpha", "")),
            (
                "crates/alpha/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub const LINE_TYPES: [&str; 2] = [\"frame\", \"ghost\"];\n",
            ),
            ("crates/beta/Cargo.toml", &package_toml("patu-beta", "")),
            (
                "crates/beta/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn emit_frame(n: u32) -> String {\n\
                 \x20   format!(\"{{\\\"type\\\":\\\"frame\\\",\\\"n\\\":{n}}}\")\n\
                 }\n\
                 pub fn emit_rogue(n: u32) -> String {\n\
                 \x20   format!(\"{{\\\"type\\\":\\\"rogue\\\",\\\"n\\\":{n}}}\")\n\
                 }\n",
            ),
        ],
    );
    let diags = patu_lint::run(&dir).expect("lint temp tree");
    assert_eq!(
        rules_of(&diags),
        vec![
            ("schema-sync", "crates/alpha/src/lib.rs".to_string(), 2),
            ("schema-sync", "crates/beta/src/lib.rs".to_string(), 6),
        ],
        "dead registry entry flagged at the registry, rogue tag at the \
         emission — the registered-and-emitted tag stays silent"
    );
}

#[test]
fn fix_converges_through_the_public_pipeline() {
    let dir = tree(
        "patu_lint_v2_fix",
        &[
            ("Cargo.toml", WORKSPACE_TOML),
            ("crates/demo/Cargo.toml", &package_toml("patu-demo", "")),
            (
                "crates/demo/src/lib.rs",
                // patu-lint: allow(float-fmt) — deliberately-dirty fixture source, embedded as a string
                "#![forbid(unsafe_code)]\n\
                 use std::collections::HashMap;\n\
                 pub fn emit(mean: f64) -> String {\n\
                 \x20   let _m: HashMap<u32, u32> = HashMap::new();\n\
                 \x20   format!(\"{{\\\"mean\\\": {mean:.2}}}\")\n\
                 }\n",
            ),
        ],
    );
    let before = patu_lint::run(&dir).expect("lint temp tree");
    assert!(before.iter().any(|d| d.rule == "hash-order"));
    assert!(before.iter().any(|d| d.rule == "float-fmt"));

    let report = patu_lint::fix::run_fix(&dir, &before, false, false).expect("apply fixes");
    assert!(report.changed_anything(), "the rewrites must apply");

    let after = patu_lint::run(&dir).expect("re-lint fixed tree");
    assert!(
        after
            .iter()
            .all(|d| d.rule != "hash-order" && d.rule != "float-fmt"),
        "fixed tree still reports: {after:?}"
    );
    // `--fix --check` contract: a fixed tree has nothing pending.
    let dry = patu_lint::fix::run_fix(&dir, &after, false, true).expect("dry run");
    assert!(!dry.changed_anything(), "{dry:?}");
}

#[test]
fn incremental_cache_reuses_clean_files_and_invalidates_edits() {
    let dir = tree(
        "patu_lint_v2_cache",
        &[
            ("Cargo.toml", WORKSPACE_TOML),
            ("crates/alpha/Cargo.toml", &package_toml("patu-alpha", "")),
            (
                "crates/alpha/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn a() -> u32 {\n    1\n}\n",
            ),
            ("crates/beta/Cargo.toml", &package_toml("patu-beta", "")),
            (
                "crates/beta/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn b() -> u32 {\n    2\n}\n",
            ),
        ],
    );
    let opts = Options {
        incremental: true,
        debt: false,
    };
    let cold = patu_lint::run_with(&dir, &opts).expect("cold run");
    assert!(cold.diags.is_empty(), "{:?}", cold.diags);
    assert_eq!(cold.reused, 0, "nothing to reuse on a cold cache");

    let warm = patu_lint::run_with(&dir, &opts).expect("warm run");
    assert!(warm.diags.is_empty(), "{:?}", warm.diags);
    assert_eq!(warm.reused, 2, "both .rs analyses must come from the cache");

    // Edit one file: only that file re-analyzes, and its new violation
    // surfaces even though the interprocedural pass ran on cached facts.
    std::fs::write(
        dir.join("crates/beta/src/lib.rs"),
        "#![forbid(unsafe_code)]\n\
         use std::collections::HashMap;\n\
         pub fn b() -> HashMap<u32, u32> {\n\
             HashMap::new()\n\
         }\n",
    )
    .expect("edit beta");
    let edited = patu_lint::run_with(&dir, &opts).expect("post-edit run");
    assert_eq!(edited.reused, 1, "the untouched file stays cached");
    assert!(
        edited.diags.iter().any(|d| d.rule == "hash-order"),
        "{:?}",
        edited.diags
    );
}

#[test]
fn sarif_output_of_a_real_run_validates() {
    let dir = tree(
        "patu_lint_v2_sarif",
        &[
            ("Cargo.toml", WORKSPACE_TOML),
            ("crates/demo/Cargo.toml", &package_toml("patu-demo", "")),
            (
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn bad(x: Option<u32>) -> u32 {\n\
                 \x20   x.unwrap()\n\
                 }\n",
            ),
        ],
    );
    let diags = patu_lint::run(&dir).expect("lint temp tree");
    assert!(!diags.is_empty(), "the fixture must produce findings");
    let sarif = patu_lint::sarif::to_sarif(&diags);
    patu_lint::sarif::validate(&sarif).expect("generated SARIF must validate");
}
