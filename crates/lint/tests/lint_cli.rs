//! End-to-end tests of the `patu-lint` binary: exit codes, JSON output, and
//! the ci.sh hard-fail contract — a violation injected into a temp tree must
//! flip the exit code and name the offending `file:line`.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_patu-lint"))
}

/// Builds a minimal clean workspace under `CARGO_TARGET_TMPDIR`.
fn temp_tree(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale temp tree");
    }
    std::fs::create_dir_all(dir.join("crates/demo/src")).expect("create temp tree");
    std::fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/demo\"]\n",
    )
    .expect("write workspace manifest");
    std::fs::write(
        dir.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n\n[dependencies]\n",
    )
    .expect("write crate manifest");
    std::fs::write(
        dir.join("crates/demo/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn ok() -> u32 {\n    7\n}\n",
    )
    .expect("write lib.rs");
    dir
}

#[test]
fn clean_tree_exits_zero() {
    let dir = temp_tree("patu_lint_clean_tree");
    let out = bin()
        .arg("--root")
        .arg(&dir)
        .output()
        .expect("run patu-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean tree must exit 0; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("workspace clean"));
}

#[test]
fn injected_violation_fails_with_file_and_line() {
    let dir = temp_tree("patu_lint_dirty_tree");
    std::fs::write(
        dir.join("crates/demo/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn bad(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("inject violation");
    let out = bin()
        .args(["--format", "json", "--root"])
        .arg(&dir)
        .output()
        .expect("run patu-lint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "a violation must exit 1, the ci.sh hard-fail contract"
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"violations\": 1"), "got: {json}");
    assert!(json.contains("\"rule\": \"panic-path\""), "got: {json}");
    assert!(json.contains("crates/demo/src/lib.rs"), "got: {json}");
    assert!(json.contains("\"line\": 3"), "got: {json}");
}

#[test]
fn injected_manifest_violation_fails() {
    let dir = temp_tree("patu_lint_dirty_manifest");
    std::fs::write(
        dir.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n\n[dependencies]\nserde = \"1.0\"\n",
    )
    .expect("inject external dependency");
    let out = bin()
        .arg("--root")
        .arg(&dir)
        .output()
        .expect("run patu-lint");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("crates/demo/Cargo.toml:6: [extern-dep]"),
        "got: {text}"
    );
}

#[test]
fn the_real_workspace_is_clean_through_the_cli() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let out = bin()
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run patu-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn sarif_pipeline_roundtrips_through_check_sarif() {
    let dir = temp_tree("patu_lint_sarif_pipe");
    std::fs::write(
        dir.join("crates/demo/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn bad(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("inject violation");
    let out = bin()
        .args(["--format", "sarif", "--root"])
        .arg(&dir)
        .output()
        .expect("run patu-lint");
    assert_eq!(out.status.code(), Some(1), "violations still exit 1");
    let sarif_path = dir.join("lint.sarif");
    std::fs::write(&sarif_path, &out.stdout).expect("write sarif artifact");

    // The ci.sh contract: the emitted artifact must pass --check-sarif.
    let check = bin()
        .arg("--check-sarif")
        .arg(&sarif_path)
        .output()
        .expect("run patu-lint --check-sarif");
    assert_eq!(
        check.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&check.stderr)
    );

    // Corrupt it: validation must fail with exit 2.
    std::fs::write(&sarif_path, b"{\"version\": \"9.9\"}").expect("corrupt artifact");
    let bad = bin()
        .arg("--check-sarif")
        .arg(&sarif_path)
        .output()
        .expect("run patu-lint --check-sarif");
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn fix_check_flags_pending_rewrites_then_settles() {
    let dir = temp_tree("patu_lint_fix_check");
    std::fs::write(
        dir.join("crates/demo/src/lib.rs"),
        "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\n\
         pub fn m() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n",
    )
    .expect("inject fixable violation");
    let pending = bin()
        .args(["--fix", "--check", "--root"])
        .arg(&dir)
        .output()
        .expect("run patu-lint --fix --check");
    assert_eq!(
        pending.status.code(),
        Some(1),
        "pending rewrites must fail the check; stderr: {}",
        String::from_utf8_lossy(&pending.stderr)
    );

    let fix = bin()
        .args(["--fix", "--root"])
        .arg(&dir)
        .output()
        .expect("run patu-lint --fix");
    assert_eq!(fix.status.code(), Some(0), "the fixed tree lints clean");

    let settled = bin()
        .args(["--fix", "--check", "--root"])
        .arg(&dir)
        .output()
        .expect("re-run patu-lint --fix --check");
    assert_eq!(
        settled.status.code(),
        Some(0),
        "--fix is idempotent: a fixed tree has nothing pending"
    );
}

#[test]
fn incremental_cli_reports_cache_reuse() {
    let dir = temp_tree("patu_lint_incr_cli");
    let run = || {
        bin()
            .args(["--incremental", "--root"])
            .arg(&dir)
            .output()
            .expect("run patu-lint --incremental")
    };
    let cold = run();
    assert_eq!(cold.status.code(), Some(0));
    let warm = run();
    assert_eq!(warm.status.code(), Some(0));
    let text = String::from_utf8_lossy(&warm.stdout);
    assert!(
        text.contains("1 cached"),
        "warm run must reuse the single .rs analysis; got: {text}"
    );
}

#[test]
fn bad_usage_and_missing_root_exit_two() {
    let out = bin()
        .args(["--format", "yaml"])
        .output()
        .expect("run patu-lint");
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown format is a usage error"
    );

    let missing = Path::new(env!("CARGO_TARGET_TMPDIR")).join("patu_lint_no_such_tree");
    let out = bin()
        .arg("--root")
        .arg(&missing)
        .output()
        .expect("run patu-lint");
    assert_eq!(
        out.status.code(),
        Some(2),
        "unwalkable root is an I/O failure"
    );
}

#[test]
fn rules_listing_names_every_rule() {
    let out = bin().arg("--rules").output().expect("run patu-lint");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "wall-clock",
        "thread-spawn",
        "panic-path",
        "hash-order",
        "env-var",
        "float-fmt",
        "unsafe-code",
        "extern-dep",
        "det-rng-discipline",
        "parallel-float-fold",
        "knob-at-construction",
        "schema-sync",
        "unused-pragma",
    ] {
        assert!(text.contains(rule), "--rules must list {rule}");
    }
}
