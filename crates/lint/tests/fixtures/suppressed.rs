// Fixture: suppression pragmas. Well-formed pragmas with reasons silence
// their target line; malformed or reasonless pragmas are themselves reported.
pub fn own_line_pragma(x: Option<u32>) -> u32 {
    // patu-lint: allow(panic-path) — fixture: the value is seeded two lines up
    x.unwrap()
}

pub fn trailing_pragma(r: Result<u32, u32>) -> u32 {
    r.expect("fixture") // patu-lint: allow(panic-path) — fixture: trailing form
}

pub fn multi_rule_pragma() -> usize {
    // patu-lint: allow(hash-order, panic-path) — fixture: one pragma, two rules
    std::collections::HashMap::<u32, u32>::new().len().checked_add(1).unwrap()
}

pub fn reasonless(x: Option<u32>) -> u32 {
    // patu-lint: allow(panic-path)
    //~^ bad-pragma
    x.unwrap() //~ panic-path
}

pub fn unknown_rule(x: Option<u32>) -> u32 {
    // patu-lint: allow(imaginary-rule) — no such rule id exists
    //~^ bad-pragma
    x.unwrap() //~ panic-path
}

pub fn wrong_rule(x: Option<u32>) -> u32 {
    // patu-lint: allow(hash-order) — fixture: suppresses the wrong rule
    x.unwrap() //~ panic-path
}
