// Fixture: float-fmt rule. Raw float specs into JSON keys are flagged;
// pre-rendered tokens (the patu-obs helper output) are not.
pub fn to_json(mean: f64, count: u64) -> String {
    format!("{{\"mean\": {:.2}, \"count\": {count}}}", mean) //~ float-fmt
}

pub fn scientific(p99: f64) -> String {
    format!("{{\"p99\": {:e}}}", p99) //~ float-fmt
}

pub fn safe(mean_token: &str, count: u64) -> String {
    format!("{{\"mean\": {mean_token}, \"count\": {count}}}")
}
