// Fixture: thread-spawn rule.
pub fn run() -> i32 {
    let handle = std::thread::spawn(|| 42); //~ thread-spawn
    let joined = handle.join();
    std::thread::scope(|_s| {}); //~ thread-spawn
    joined.unwrap_or(0)
}
