//! schema-sync fixture: every emitted `"type"` tag must appear in the
//! `LINE_TYPES` registry, and every registered tag must still be emitted
//! somewhere. `"ghost"` below is registered but dead; `"rogue"` is emitted
//! but unregistered.

pub const LINE_TYPES: [&str; 2] = ["frame", "ghost"]; //~ schema-sync

pub fn emit_frame(n: u32) -> String {
    format!("{{\"type\":\"frame\",\"n\":{n}}}")
}

pub fn emit_rogue(n: u32) -> String {
    format!("{{\"type\":\"rogue\",\"n\":{n}}}") //~ schema-sync
}

pub fn emit_legacy(n: u32) -> String {
    // patu-lint: allow(schema-sync) — fixture: proves pragma coverage
    format!("{{\"type\":\"legacy\",\"n\":{n}}}")
}
