// Fixture: env-var rule.
pub fn threads() -> usize {
    let parsed = std::env::var("PATU_THREADS").ok(); //~ env-var
    let listed = std::env::vars().count(); //~ env-var
    parsed.and_then(|v| v.parse().ok()).unwrap_or(listed.min(1))
}
