// Fixture: zero diagnostics expected. Banned tokens appear only in places
// the lexer must ignore: comments, strings, lookalike identifiers, and
// `#[cfg(test)]` regions for the strict-only rules.
//
// Comment mentions: Instant::now() HashMap::new() std::thread::spawn panic!
/* block comment: unreachable! std::env::var("PATU_THREADS") unsafe { } */

pub fn strings() -> (&'static str, String) {
    let a = "Instant::now() and HashMap::new() and unsafe and x.unwrap()";
    let b = format!("data: {}", "SystemTime::now()");
    (a, b)
}

pub fn lookalikes(x: Option<u32>) -> u32 {
    x.unwrap_or_default().max(x.unwrap_or(3)).max(x.expect_value())
}

trait ExpectValue {
    fn expect_value(&self) -> u32;
}

impl ExpectValue for Option<u32> {
    fn expect_value(&self) -> u32 {
        self.unwrap_or(0)
    }
}

pub fn json_data_not_a_spec() -> &'static str {
    "{\"type\":\"hist\",\"mean\":2.5,\"p50\":8}"
}

pub fn raw_string_banned_tokens() -> &'static str {
    r#"std::time::SystemTime::now(); let m: HashSet<u32>;"#
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn strict_only_rules_relax_inside_test_regions() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.values().sum::<u32>(), 2);
        let v = Some(7u32).unwrap();
        let json = format!("{{\"v\": {:.1}}}", f64::from(v));
        assert!(json.contains("7.0"));
    }
}
