//! float-fmt chain fixture: a string formatted with a float precision spec
//! that later lands inside a JSON-keyed literal is flagged at the sink —
//! even when the formatting happened in a helper function.

pub fn direct(v: f64) -> String {
    let pretty = format!("{v:.3}");
    format!("{{\"mean\": {}}}", pretty) //~ float-fmt
}

fn pct(x: f64) -> String {
    format!("{x:.1}")
}

pub fn chained(x: f64) -> String {
    let shown = pct(x);
    format!("{{\"pct\": \"{}\"}}", shown) //~ float-fmt
}

pub fn human(v: f64) -> String {
    let pretty = format!("{v:.3}");
    println!("| {} |", pretty);
    pretty
}

pub fn suppressed(x: f64) -> String {
    let shown = pct(x);
    // patu-lint: allow(float-fmt) — fixture: proves pragma coverage
    format!("{{\"pct\": \"{}\"}}", shown)
}
