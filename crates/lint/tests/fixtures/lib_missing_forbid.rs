//! Fixture: a crate root without `#![forbid(unsafe_code)]`. //~ unsafe-code
pub fn fine() -> u32 {
    7
}
