//! det-rng-discipline fixture: RNG streams crossing a partition boundary.
//! The sanctioned pattern is a fresh `fork(task_id)` child per task; draws
//! from captured or cloned streams make the sequence depend on scheduling.

use patu_gmath::DetRng;
use patu_sim::parallel;

pub fn captured_draw(seed: u64) -> Vec<u64> {
    let mut rng = DetRng::new(seed);
    parallel::run_indexed(4, 8, |i| rng.next_u64() + i as u64) //~ det-rng-discipline
}

pub fn forked_children(seed: u64) -> Vec<u64> {
    let rng = DetRng::new(seed);
    parallel::run_indexed(4, 8, |i| {
        let mut child = rng.fork(i as u64);
        child.next_u64()
    })
}

pub fn reseeded(seed: u64) -> u64 {
    let mut a = DetRng::new(seed);
    let mut b = DetRng::new(a.next_u64()); //~ det-rng-discipline
    b.next_u64()
}

pub fn task_vector(seed: u64) -> Vec<u64> {
    let mut rng = DetRng::new(seed);
    let tasks: Vec<parallel::Task<'_, u64>> = (0..4)
        .map(|i| Box::new(move || rng.next_u64() + i) as parallel::Task<'_, u64>) //~ det-rng-discipline
        .collect();
    parallel::run_tasks(2, tasks)
}

fn draws_in_partition(rng: &mut DetRng) -> Vec<u64> {
    parallel::run_indexed(4, 8, |i| rng.next_u64() + i as u64)
}

pub fn calls_helper(seed: u64) -> Vec<u64> {
    let mut rng = DetRng::new(seed);
    draws_in_partition(&mut rng) //~ det-rng-discipline
}

pub fn suppressed(seed: u64) -> Vec<u64> {
    let mut rng = DetRng::new(seed);
    // patu-lint: allow(det-rng-discipline) — fixture: proves pragma coverage
    parallel::run_indexed(4, 8, |i| rng.next_u64() + i as u64)
}
