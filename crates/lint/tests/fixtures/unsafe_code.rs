// Fixture: unsafe-code rule.
pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) } //~ unsafe-code
}
