//! parallel-float-fold fixture: float reductions whose grouping or order
//! is shaped by the thread count. The sanctioned path is the ordered merge
//! performed by `parallel::run_tasks`/`run_indexed` themselves.

use patu_sim::parallel;

pub fn grouped(explicit: Option<usize>, vals: &[f64]) -> f64 {
    let t = parallel::thread_count(explicit);
    let mut partials = vec![0.0f64; t];
    for (i, v) in vals.iter().enumerate() {
        partials[i % t] += v; //~ parallel-float-fold
    }
    partials.iter().sum::<f64>() //~ parallel-float-fold
}

pub fn ordered_merge(explicit: Option<usize>) -> f64 {
    let t = parallel::thread_count(explicit);
    let outputs = parallel::run_indexed(t, 8, |i| i as f64);
    outputs.iter().sum::<f64>()
}

pub fn chunked(explicit: Option<usize>, vals: &[f64]) -> f64 {
    let t = parallel::thread_count(explicit);
    vals.chunks(t).map(|c| c.iter().sum::<f64>()).sum::<f64>() //~ parallel-float-fold
}

fn reduce_with(groups: usize, vals: &[f64]) -> f64 {
    vals.chunks(groups).map(|c| c.iter().sum::<f64>()).sum::<f64>()
}

pub fn calls_reducer(explicit: Option<usize>, vals: &[f64]) -> f64 {
    let t = parallel::thread_count(explicit);
    reduce_with(t, vals) //~ parallel-float-fold
}

pub fn suppressed(explicit: Option<usize>, vals: &[f64]) -> f64 {
    let t = parallel::thread_count(explicit);
    // patu-lint: allow(parallel-float-fold) — fixture: proves pragma coverage
    vals.chunks(t).map(|c| c.iter().sum::<f64>()).sum::<f64>()
}
