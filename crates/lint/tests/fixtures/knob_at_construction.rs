//! knob-at-construction fixture: environment knobs read on a path reachable
//! from a frame-loop entry point must move to construction time. Reads that
//! are not reachable from `render_frame`/`run_session` only get the plain
//! `env-var` diagnostic.

pub fn render_frame(frame: u32) -> u32 {
    per_frame(frame) + governed(frame)
}

fn per_frame(frame: u32) -> u32 {
    let knob = std::env::var("PATU_FIXTURE").ok(); //~ env-var knob-at-construction
    knob.map_or(frame, |v| v.len() as u32 + frame)
}

fn governed(frame: u32) -> u32 {
    // patu-lint: allow(knob-at-construction) — fixture: proves pragma coverage
    let knob = std::env::var("PATU_GOV").ok(); //~ env-var
    knob.map_or(frame, |v| v.len() as u32 + frame)
}

pub fn from_env() -> u32 {
    let knob = std::env::var("PATU_SETUP").ok(); //~ env-var
    knob.map_or(0, |v| v.len() as u32)
}
