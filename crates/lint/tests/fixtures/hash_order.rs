// Fixture: hash-order rule.
use std::collections::HashMap; //~ hash-order
use std::collections::HashSet; //~ hash-order

pub fn count(keys: &[u32]) -> usize {
    let set: HashSet<u32> = keys.iter().copied().collect(); //~ hash-order
    let mut map: HashMap<u32, u32> = HashMap::new(); //~ hash-order hash-order
    for k in keys {
        *map.entry(*k).or_insert(0) += 1;
    }
    set.len() + map.len()
}
