// Fixture: wall-clock rule. Marked lines must each be reported once.
use std::time::Instant; //~ wall-clock
use std::time::SystemTime; //~ wall-clock

pub fn now_ms() -> u128 {
    let t = Instant::now(); //~ wall-clock
    let _ = SystemTime::now(); //~ wall-clock
    t.elapsed().as_millis()
}
