// Fixture: panic-path rule in strict library scope.
pub fn all_forms(x: Option<u32>, r: Result<u32, u32>) -> u32 {
    let a = x.unwrap(); //~ panic-path
    let b = r.expect("boom"); //~ panic-path
    if a > b {
        panic!("a > b"); //~ panic-path
    }
    match a {
        0 => unreachable!(), //~ panic-path
        1 => todo!(), //~ panic-path
        2 => unimplemented!(), //~ panic-path
        _ => a + b,
    }
}
