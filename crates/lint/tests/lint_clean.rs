//! The workspace self-lint: the tree this test runs in must hold every
//! invariant `patu-lint` enforces. A violation anywhere in the workspace —
//! including in the linter's own sources — fails this test with the full
//! `file:line` diagnostic list.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let diags = match patu_lint::run(&root) {
        Ok(diags) => diags,
        Err(e) => panic!("patu-lint failed to walk the workspace: {e}"),
    };
    assert!(
        diags.is_empty(),
        "workspace must be patu-lint clean, found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.human())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
