//! The workspace self-lint: the tree this test runs in must hold every
//! invariant `patu-lint` enforces. A violation anywhere in the workspace —
//! including in the linter's own sources — fails this test with the full
//! `file:line` diagnostic list.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let diags = match patu_lint::run(&root) {
        Ok(diags) => diags,
        Err(e) => panic!("patu-lint failed to walk the workspace: {e}"),
    };
    assert!(
        diags.is_empty(),
        "workspace must be patu-lint clean, found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.human())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The stricter v2 self-lint: with `--debt` every reasoned pragma in the
/// tree must still be suppressing a live violation, and the incremental
/// cache must reproduce the direct run exactly.
#[test]
fn workspace_is_debt_free_and_cache_faithful() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let opts = patu_lint::Options {
        incremental: true,
        debt: true,
    };
    let cold = match patu_lint::run_with(&root, &opts) {
        Ok(outcome) => outcome,
        Err(e) => panic!("patu-lint failed to walk the workspace: {e}"),
    };
    assert!(
        cold.diags.is_empty(),
        "workspace must be clean including pragma debt, found:\n{}",
        cold.diags
            .iter()
            .map(|d| d.human())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let warm = match patu_lint::run_with(&root, &opts) {
        Ok(outcome) => outcome,
        Err(e) => panic!("patu-lint failed on the warm run: {e}"),
    };
    assert!(
        warm.diags.is_empty(),
        "cached run must agree with the cold run"
    );
    assert!(
        warm.reused > 0,
        "the warm run must reuse cached analyses ({} files)",
        warm.files
    );
}
