//! Fixture-driven tests of the rule engine: every rule must fire at exactly
//! the marked `file:line`, suppressions must hold, and false-positive bait
//! (banned tokens in strings, comments and test regions) must stay silent.
//!
//! Markers are compiletest-style. In a fixture, a trailing `//~ rule`
//! comment (`#~ rule` in TOML) means "this line must be reported under
//! `rule`"; `//~^ rule` points at the line above (used where the flagged
//! line cannot carry a trailing comment, e.g. a pragma line). A marker may
//! repeat a rule when the line yields several diagnostics.

use patu_lint::manifest::lint_manifest;
use patu_lint::rules::lint_source;
use std::collections::BTreeMap;

/// Parses the expected `(rule, line)` set out of a fixture's markers.
fn expected(src: &str, comment: &str) -> Vec<(String, u32)> {
    let marker = format!("{comment}~");
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let Some(pos) = line.find(&marker) else {
            continue;
        };
        let rest = &line[pos + marker.len()..];
        let (target, rules) = match rest.strip_prefix('^') {
            Some(r) => (line_no - 1, r),
            None => (line_no, rest),
        };
        for rule in rules.split_whitespace() {
            out.push((rule.to_string(), target));
        }
    }
    out.sort();
    out
}

/// Lints `src` as `path` and asserts the diagnostics match the markers.
fn check_source(path: &str, src: &str) {
    let diags = lint_source(path, src);
    for d in &diags {
        assert_eq!(d.path, path, "diagnostic carries the linted path");
        assert!(!d.message.is_empty(), "diagnostic has a message");
    }
    let mut actual: Vec<(String, u32)> = diags
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect();
    actual.sort();
    assert_eq!(
        actual,
        expected(src, "//"),
        "diagnostics mismatch for {path}"
    );
}

/// Runs the full v2 pipeline over a single file — per-file analysis plus
/// the interprocedural pass (call graph, knob reachability, float-fmt
/// chains, schema sync) restricted to that file's facts — and asserts the
/// suppressed diagnostics match the markers. Every pragma in a v2 fixture
/// must fire (the debt check).
fn check_source_v2(path: &str, src: &str) {
    let mut crates = BTreeMap::new();
    crates.insert("crates/fixture".to_string(), "patu_fixture".to_string());
    let analysis = patu_lint::rules::analyze_source(path, src, &crates);
    let mut facts = BTreeMap::new();
    facts.insert(path.to_string(), analysis.facts.clone());

    let mut raw = analysis.raw.clone();
    raw.extend(patu_lint::callgraph::check(&facts));
    raw.extend(patu_lint::callgraph::float_chain(&facts));
    let schema: Vec<_> = facts
        .iter()
        .map(|(p, f)| (p.clone(), f.emits.clone(), f.registry.clone()))
        .collect();
    raw.extend(patu_lint::schema_sync::check(&schema));

    let mut used = vec![false; analysis.suppressions.len()];
    let diags = patu_lint::rules::apply_suppressions(raw, &analysis.suppressions, &mut used);
    assert!(
        used.iter().all(|u| *u),
        "every pragma in a v2 fixture must suppress something ({path})"
    );
    let mut actual: Vec<(String, u32)> = diags
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect();
    actual.sort();
    assert_eq!(
        actual,
        expected(src, "//"),
        "v2 diagnostics mismatch for {path}"
    );
}

#[test]
fn wall_clock_fixture() {
    check_source(
        "crates/fixture/src/wall_clock.rs",
        include_str!("fixtures/wall_clock.rs"),
    );
}

#[test]
fn thread_spawn_fixture() {
    check_source(
        "crates/fixture/src/thread_spawn.rs",
        include_str!("fixtures/thread_spawn.rs"),
    );
}

#[test]
fn panic_path_fixture() {
    check_source(
        "crates/fixture/src/panic_path.rs",
        include_str!("fixtures/panic_path.rs"),
    );
}

#[test]
fn hash_order_fixture() {
    check_source(
        "crates/fixture/src/hash_order.rs",
        include_str!("fixtures/hash_order.rs"),
    );
}

#[test]
fn env_var_fixture() {
    check_source(
        "crates/fixture/src/env_var.rs",
        include_str!("fixtures/env_var.rs"),
    );
}

#[test]
fn float_fmt_fixture() {
    check_source(
        "crates/fixture/src/float_fmt.rs",
        include_str!("fixtures/float_fmt.rs"),
    );
}

#[test]
fn unsafe_code_fixture() {
    check_source(
        "crates/fixture/src/unsafe_code.rs",
        include_str!("fixtures/unsafe_code.rs"),
    );
}

#[test]
fn lib_root_missing_forbid_fixture() {
    check_source(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/lib_missing_forbid.rs"),
    );
}

#[test]
fn suppression_fixture() {
    check_source(
        "crates/fixture/src/suppressed.rs",
        include_str!("fixtures/suppressed.rs"),
    );
}

#[test]
fn false_positive_fixture_is_silent() {
    let src = include_str!("fixtures/false_positive.rs");
    assert_eq!(
        expected(src, "//"),
        Vec::<(String, u32)>::new(),
        "fixture carries no markers"
    );
    check_source("crates/fixture/src/false_positive.rs", src);
}

#[test]
fn extern_dep_fixture() {
    let src = include_str!("fixtures/extern_dep.toml");
    let mut actual: Vec<(String, u32)> = lint_manifest("crates/fixture/Cargo.toml", src)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect();
    actual.sort();
    assert_eq!(actual, expected(src, "#"), "manifest diagnostics mismatch");
}

#[test]
fn det_rng_fixture() {
    check_source_v2(
        "crates/fixture/src/det_rng.rs",
        include_str!("fixtures/det_rng.rs"),
    );
}

#[test]
fn float_fold_fixture() {
    check_source_v2(
        "crates/fixture/src/float_fold.rs",
        include_str!("fixtures/float_fold.rs"),
    );
}

#[test]
fn float_fmt_chain_fixture() {
    check_source_v2(
        "crates/fixture/src/float_fmt_chain.rs",
        include_str!("fixtures/float_fmt_chain.rs"),
    );
}

#[test]
fn knob_at_construction_fixture() {
    check_source_v2(
        "crates/fixture/src/knob_at_construction.rs",
        include_str!("fixtures/knob_at_construction.rs"),
    );
}

#[test]
fn schema_sync_fixture() {
    check_source_v2(
        "crates/fixture/src/schema_sync.rs",
        include_str!("fixtures/schema_sync.rs"),
    );
}

#[test]
fn relaxed_scope_silences_strict_only_rules() {
    let panics = include_str!("fixtures/panic_path.rs");
    assert!(lint_source("crates/bench/src/bin/fixture.rs", panics).is_empty());
    assert!(lint_source("crates/gpu/tests/fixture.rs", panics).is_empty());
    let hashes = include_str!("fixtures/hash_order.rs");
    assert!(lint_source("tests/fixture.rs", hashes).is_empty());
    let envs = include_str!("fixtures/env_var.rs");
    assert!(lint_source("crates/quality/benches/fixture.rs", envs).is_empty());
}

#[test]
fn determinism_rules_apply_even_in_relaxed_scope() {
    let clocks = include_str!("fixtures/wall_clock.rs");
    assert_eq!(
        lint_source("crates/bench/src/bin/fixture.rs", clocks).len(),
        4
    );
    let spawns = include_str!("fixtures/thread_spawn.rs");
    assert_eq!(lint_source("crates/gpu/tests/fixture.rs", spawns).len(), 2);
    let unsafes = include_str!("fixtures/unsafe_code.rs");
    assert_eq!(lint_source("tests/fixture.rs", unsafes).len(), 1);
}

#[test]
fn sanctioned_entry_points_are_exempt() {
    let clocks = include_str!("fixtures/wall_clock.rs");
    assert!(lint_source("crates/bench/src/micro.rs", clocks).is_empty());
    let spawns = include_str!("fixtures/thread_spawn.rs");
    assert!(lint_source("crates/sim/src/parallel.rs", spawns).is_empty());
    // Every reader registered in ENV_KNOBS is exempt from env-var — the
    // fixture that fires everywhere else stays silent there.
    let envs = include_str!("fixtures/env_var.rs");
    for knob in patu_lint::rules::ENV_KNOBS {
        for reader in knob.readers {
            assert!(
                lint_source(reader, envs).is_empty(),
                "{reader} reads {}",
                knob.name
            );
        }
    }
}
