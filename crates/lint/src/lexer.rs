//! A token-level Rust lexer: just enough syntax awareness for invariant
//! checking — comments (line, nested block, doc), string literals (plain,
//! raw, byte), char literals vs. lifetimes, identifiers and punctuation —
//! with line numbers on every token. Suppression pragmas are harvested from
//! line comments during the same pass.
//!
//! This is deliberately not a parser. The rules in [`crate::rules`] match
//! short token sequences (`thread` `::` `spawn`, `.` `unwrap` `(`), which a
//! lexer resolves exactly as long as it never mistakes a comment or string
//! for code — the classic grep failure mode this module exists to avoid.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `thread`, `HashMap`, ...).
    Ident,
    /// Any string literal; [`Tok::text`] keeps the raw source slice,
    /// including quotes, escapes and raw-string hashes.
    Str,
    /// A character literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal.
    Num,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Raw source text (for [`TokKind::Punct`], a single character).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// Byte offset of the token's first character in the source, so the
    /// `--fix` engine can splice rewrites without re-scanning.
    pub pos: usize,
}

/// A `// patu-lint: ...` suppression pragma found in a line comment.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Rule ids inside `allow(...)`; empty when the pragma is malformed.
    pub rules: Vec<String>,
    /// Whether a non-empty justification follows the `allow(...)` clause.
    pub has_reason: bool,
    /// Whether the pragma parsed at all (`allow(` present and closed).
    pub well_formed: bool,
}

/// The output of [`lex`]: the token stream plus any pragmas seen.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens, in source order.
    pub toks: Vec<Tok>,
    /// All suppression pragmas, in source order.
    pub pragmas: Vec<Pragma>,
}

/// The marker that introduces a suppression pragma in a line comment.
pub const PRAGMA_MARKER: &str = "patu-lint:";

/// Parses a suppression pragma out of a comment body (the text after `//`
/// or TOML's `#`). Returns `None` when the comment is not a pragma at all.
pub fn parse_comment_pragma(comment: &str, line: u32) -> Option<Pragma> {
    let rest = comment
        .trim_start()
        .strip_prefix(PRAGMA_MARKER)?
        .trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Some(Pragma {
            line,
            rules: Vec::new(),
            has_reason: false,
            well_formed: false,
        });
    };
    let Some(close) = args.find(')') else {
        return Some(Pragma {
            line,
            rules: Vec::new(),
            has_reason: false,
            well_formed: false,
        });
    };
    let rules: Vec<String> = args[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = args[close + 1..]
        .trim_start_matches([' ', '\t', '-', '—', '–', ':'])
        .trim();
    Some(Pragma {
        line,
        rules,
        has_reason: tail.chars().count() >= 3,
        well_formed: true,
    })
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Consumes a string body after the opening quote; `pos` is left after the
/// closing quote.
fn eat_string_body(c: &mut Cursor<'_>) {
    while !c.eof() {
        match c.bump() {
            b'"' => return,
            b'\\' => {
                c.bump();
            }
            _ => {}
        }
    }
}

/// Consumes a raw-string body after `r##...#"`; `hashes` is the number of
/// `#` markers.
fn eat_raw_string_body(c: &mut Cursor<'_>, hashes: usize) {
    while !c.eof() {
        if c.bump() == b'"' {
            let mut matched = 0;
            while matched < hashes && c.peek(0) == b'#' {
                c.bump();
                matched += 1;
            }
            if matched == hashes {
                return;
            }
        }
    }
}

/// Lexes `src` into tokens and pragmas. Never fails: malformed input
/// degrades to punctuation tokens, which no rule matches.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while !c.eof() {
        let start = c.pos;
        let line = c.line;
        let b = c.peek(0);

        // Whitespace.
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }

        // Comments (and pragma harvesting from line comments).
        if b == b'/' && c.peek(1) == b'/' {
            while !c.eof() && c.peek(0) != b'\n' {
                c.bump();
            }
            let text = &src[start + 2..c.pos];
            let body = text.trim_start_matches(['/', '!']);
            if let Some(pragma) = parse_comment_pragma(body, line) {
                out.pragmas.push(pragma);
            }
            continue;
        }
        if b == b'/' && c.peek(1) == b'*' {
            c.bump();
            c.bump();
            let mut depth = 1usize;
            while !c.eof() && depth > 0 {
                if c.peek(0) == b'/' && c.peek(1) == b'*' {
                    c.bump();
                    c.bump();
                    depth += 1;
                } else if c.peek(0) == b'*' && c.peek(1) == b'/' {
                    c.bump();
                    c.bump();
                    depth -= 1;
                } else {
                    c.bump();
                }
            }
            continue;
        }

        // Raw strings and raw/byte-string prefixes: r"..", r#".."#, b"..",
        // br#".."#, and raw identifiers r#ident.
        if is_ident_start(b) {
            // Try the string-literal prefixes first.
            let mut prefix_len = 0usize;
            if (b == b'r' || b == b'b') && (c.peek(1) == b'"' || c.peek(1) == b'#') {
                prefix_len = 1;
            } else if (b == b'b' && c.peek(1) == b'r' || b == b'r' && c.peek(1) == b'b')
                && (c.peek(2) == b'"' || c.peek(2) == b'#')
            {
                prefix_len = 2;
            }
            if prefix_len > 0 {
                let after = c.peek(prefix_len);
                if after == b'"' {
                    for _ in 0..=prefix_len {
                        c.bump();
                    }
                    if src.as_bytes()[start] == b'b' && prefix_len == 1 {
                        // b"..." honors escapes; r"..." and br"..." do not.
                        eat_string_body(&mut c);
                    } else {
                        eat_raw_string_body(&mut c, 0);
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: src[start..c.pos].to_string(),
                        line,
                        pos: start,
                    });
                    continue;
                }
                if after == b'#' {
                    // Count hashes; a quote after them makes a raw string,
                    // an identifier char makes a raw identifier (r#type).
                    let mut hashes = 0usize;
                    while c.peek(prefix_len + hashes) == b'#' {
                        hashes += 1;
                    }
                    if c.peek(prefix_len + hashes) == b'"' {
                        for _ in 0..prefix_len + hashes + 1 {
                            c.bump();
                        }
                        eat_raw_string_body(&mut c, hashes);
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            text: src[start..c.pos].to_string(),
                            line,
                            pos: start,
                        });
                        continue;
                    }
                    if hashes == 1 && prefix_len == 1 && is_ident_start(c.peek(2)) {
                        c.bump();
                        c.bump();
                        while is_ident_continue(c.peek(0)) {
                            c.bump();
                        }
                        out.toks.push(Tok {
                            kind: TokKind::Ident,
                            text: src[start + 2..c.pos].to_string(),
                            line,
                            pos: start,
                        });
                        continue;
                    }
                }
            }
            // Ordinary identifier / keyword.
            while is_ident_continue(c.peek(0)) {
                c.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: src[start..c.pos].to_string(),
                line,
                pos: start,
            });
            continue;
        }

        // Plain string literal.
        if b == b'"' {
            c.bump();
            eat_string_body(&mut c);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: src[start..c.pos].to_string(),
                line,
                pos: start,
            });
            continue;
        }

        // Char literal vs lifetime.
        if b == b'\'' {
            // Lifetime: 'ident not followed by a closing quote.
            if is_ident_start(c.peek(1)) {
                let mut end = 2;
                while is_ident_continue(c.peek(end)) {
                    end += 1;
                }
                if c.peek(end) != b'\'' {
                    for _ in 0..end {
                        c.bump();
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..c.pos].to_string(),
                        line,
                        pos: start,
                    });
                    continue;
                }
            }
            // Char literal: consume the (possibly escaped, possibly
            // multi-byte) payload, then the closing quote.
            c.bump();
            if c.peek(0) == b'\\' {
                c.bump();
                c.bump();
                // \u{...} escapes
                if c.peek(0) == b'{' {
                    while !c.eof() && c.bump() != b'}' {}
                }
            } else {
                let first = c.peek(0);
                let width = if first < 0x80 {
                    1
                } else if first < 0xE0 {
                    2
                } else if first < 0xF0 {
                    3
                } else {
                    4
                };
                for _ in 0..width {
                    c.bump();
                }
            }
            if c.peek(0) == b'\'' {
                c.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: src[start..c.pos].to_string(),
                line,
                pos: start,
            });
            continue;
        }

        // Numbers.
        if b.is_ascii_digit() {
            while is_ident_continue(c.peek(0)) {
                c.bump();
            }
            if c.peek(0) == b'.' && c.peek(1).is_ascii_digit() {
                c.bump();
                while is_ident_continue(c.peek(0)) {
                    c.bump();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: src[start..c.pos].to_string(),
                line,
                pos: start,
            });
            continue;
        }

        // Everything else is single-char punctuation.
        c.bump();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: src[start..c.pos].to_string(),
            line,
            pos: start,
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // unwrap() in a comment
            /* thread::spawn in a block /* nested */ still comment */
            let s = "HashMap::unwrap()"; // also hidden
            let r = r#"Instant::now()"#;
            let done = 1;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"done".to_string()));
        for banned in ["unwrap", "thread", "HashMap", "Instant"] {
            assert!(
                !ids.contains(&banned.to_string()),
                "{banned} leaked out of a literal"
            );
        }
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x.trim() }");
        assert!(ids.contains(&"trim".to_string()));
        let lifetimes: Vec<Tok> = lex("&'static str")
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 1);
    }

    #[test]
    fn char_literals_close() {
        let ids = idents(r"let c = '\n'; let q = '\''; let b = '{'; after()");
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn pragma_parses_rules_and_reason() {
        let lexed = lex("// patu-lint: allow(panic-path, hash-order) — worker panics propagate\n");
        assert_eq!(lexed.pragmas.len(), 1);
        let p = &lexed.pragmas[0];
        assert!(p.well_formed && p.has_reason);
        assert_eq!(
            p.rules,
            vec!["panic-path".to_string(), "hash-order".to_string()]
        );
    }

    #[test]
    fn pragma_without_reason_or_allow_is_flagged() {
        let lexed = lex("// patu-lint: allow(panic-path)\n// patu-lint: suppress everything\n");
        assert_eq!(lexed.pragmas.len(), 2);
        assert!(lexed.pragmas[0].well_formed && !lexed.pragmas[0].has_reason);
        assert!(!lexed.pragmas[1].well_formed);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ids = idents("let r#type = 1; use_it(r#type)");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"use_it".to_string()));
    }
}
