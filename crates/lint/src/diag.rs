//! Lint diagnostics and their human/JSON renderings.

/// One lint finding, anchored to a repo-relative `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// What was found and what to do instead.
    pub message: String,
}

impl Diagnostic {
    /// `path:line: [rule] message` — the clickable one-line form.
    pub fn human(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", ch as u32));
            }
            ch => out.push(ch),
        }
    }
    out
}

/// Serializes diagnostics as a JSON document (hand-rolled; the linter is
/// zero-dependency by design). Integers and escaped strings only, so the
/// output needs no float handling.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"tool\": \"patu-lint\",\n");
    out.push_str(&format!("  \"violations\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            escape(d.rule),
            escape(&d.path),
            d.line,
            escape(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_form_is_clickable() {
        let d = Diagnostic {
            rule: "panic-path",
            path: "crates/gpu/src/cache.rs".to_string(),
            line: 129,
            message: "`.expect()` in library code".to_string(),
        };
        assert_eq!(
            d.human(),
            "crates/gpu/src/cache.rs:129: [panic-path] `.expect()` in library code"
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = Diagnostic {
            rule: "float-fmt",
            path: "a/b.rs".to_string(),
            line: 7,
            message: "raw \"{:.1}\" in JSON".to_string(),
        };
        let json = to_json(&[d]);
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("raw \\\"{:.1}\\\" in JSON"));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = to_json(&[]);
        assert!(json.contains("\"violations\": 0"));
        assert!(json.contains("\"diagnostics\": [\n  ]"));
    }
}
