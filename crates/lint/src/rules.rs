//! The rule engine: token-sequence matching for the workspace invariants,
//! `#[cfg(test)]`-region detection, and suppression-pragma application.

use crate::diag::Diagnostic;
use crate::lexer::{self, Lexed, Tok, TokKind};
use crate::scope::{self, Strictness};

/// One row of the rule table (also rendered in DESIGN.md §10).
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id, used in diagnostics and `allow(...)` pragmas.
    pub id: &'static str,
    /// The invariant the rule enforces.
    pub invariant: &'static str,
    /// Whether the rule only applies to strict (library) non-test code.
    pub strict_only: bool,
}

/// Every rule `patu-lint` knows, in diagnostic order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wall-clock",
        invariant: "no Instant/SystemTime outside patu_bench::micro — simulated \
                    cycles are the only clock, so reruns are bit-identical",
        strict_only: false,
    },
    RuleInfo {
        id: "thread-spawn",
        invariant: "no std::thread::{spawn,scope} outside patu_sim::parallel — \
                    all concurrency goes through the deterministic task runner",
        strict_only: false,
    },
    RuleInfo {
        id: "panic-path",
        invariant: "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! in \
                    non-test library code — errors are typed end-to-end",
        strict_only: true,
    },
    RuleInfo {
        id: "hash-order",
        invariant: "no HashMap/HashSet in non-test library code — iteration \
                    order must be deterministic (BTreeMap, or sort + allow)",
        strict_only: true,
    },
    RuleInfo {
        id: "env-var",
        invariant: "no std::env::var outside the readers registered in \
                    ENV_KNOBS — every ambient knob is declared in one table \
                    and read exactly once",
        strict_only: true,
    },
    RuleInfo {
        id: "float-fmt",
        invariant: "floats enter JSON through patu_obs::json::{num,num_fixed} \
                    (null-safe), never a raw {:.N} format spec",
        strict_only: false,
    },
    RuleInfo {
        id: "unsafe-code",
        invariant: "unsafe is forbidden workspace-wide, and every library \
                    crate root carries #![forbid(unsafe_code)]",
        strict_only: false,
    },
    RuleInfo {
        id: "extern-dep",
        invariant: "every Cargo.toml dependency is a path dependency — the \
                    workspace builds offline with zero external crates",
        strict_only: false,
    },
    RuleInfo {
        id: "det-rng-discipline",
        invariant: "inside a parallel partition only region-local streams and \
                    fresh fork(tag) children may be drawn — a stream captured \
                    or cloned across the boundary makes draws race with the \
                    schedule",
        strict_only: true,
    },
    RuleInfo {
        id: "parallel-float-fold",
        invariant: "no float reduction grouped by PATU_THREADS-derived values — \
                    reassociation across thread counts breaks bit-identity; \
                    reduce through the ordered partition APIs",
        strict_only: true,
    },
    RuleInfo {
        id: "knob-at-construction",
        invariant: "no env read reachable from render_frame/run_session — \
                    knobs resolve once at config construction and flow down \
                    as values",
        strict_only: true,
    },
    RuleInfo {
        id: "schema-sync",
        invariant: "every emitted JSONL \"type\" is registered in \
                    patu_obs::schema::LINE_TYPES and every registered type \
                    has a live emitter",
        strict_only: true,
    },
    RuleInfo {
        id: "unused-pragma",
        invariant: "every allow(...) pragma still suppresses something — \
                    stale suppressions are debt (reported under --debt)",
        strict_only: false,
    },
];

/// One registered environment knob: the variable's name and the source
/// files sanctioned to read it.
#[derive(Debug, Clone, Copy)]
pub struct EnvKnob {
    /// The environment variable.
    pub name: &'static str,
    /// The files allowed to call `std::env::var` for it — the knob's config
    /// entry points. Everywhere else takes the parsed value as an argument.
    pub readers: &'static [&'static str],
}

/// Every environment knob the workspace reads. This table is the single
/// registration point: adding a knob here both exempts its reader from the
/// `env-var` rule and puts its name in the diagnostic text — no scattered
/// allowlists to keep in sync.
pub const ENV_KNOBS: &[EnvKnob] = &[
    EnvKnob {
        name: "PATU_THREADS",
        readers: &["crates/sim/src/parallel.rs", "crates/quality/src/par.rs"],
    },
    EnvKnob {
        name: "PATU_TRACE",
        readers: &["crates/obs/src/config.rs"],
    },
    EnvKnob {
        name: "PATU_SERVE_CLIENTS",
        readers: &["crates/serve/src/workload.rs"],
    },
    EnvKnob {
        name: "PATU_SERVE_SCENARIO",
        readers: &["crates/serve/src/chaos.rs"],
    },
    EnvKnob {
        name: "PATU_SSIM_SAMPLE",
        readers: &["crates/quality/src/sampled.rs"],
    },
    EnvKnob {
        name: "PATU_OBS_DUMP",
        readers: &["crates/obs/src/dump.rs"],
    },
    EnvKnob {
        name: "PATU_SLO",
        readers: &["crates/obs/src/slo.rs"],
    },
    EnvKnob {
        name: "PATU_TRACE_OUT",
        readers: &["crates/obs/src/config.rs"],
    },
    EnvKnob {
        name: "PATU_TEMPORAL",
        readers: &["crates/temporal/src/config.rs"],
    },
];

/// Files exempt from a rule because they *are* the sanctioned entry point.
fn allowed_files(rule: &str) -> &'static [&'static str] {
    match rule {
        "wall-clock" => &["crates/bench/src/micro.rs"],
        "thread-spawn" => &["crates/sim/src/parallel.rs"],
        "float-fmt" => &["crates/obs/src/json.rs"],
        // The partition runners are the sanctioned ordered-merge
        // implementations; their internals look exactly like the pattern
        // the rule bans everywhere else.
        "parallel-float-fold" => &["crates/sim/src/parallel.rs", "crates/quality/src/par.rs"],
        _ => &[],
    }
}

/// The knob names, comma-joined, for the `env-var` diagnostic.
fn knob_names() -> String {
    let names: Vec<&str> = ENV_KNOBS.iter().map(|k| k.name).collect();
    names.join("/")
}

/// Whether `id` names a known rule (valid inside `allow(...)`).
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

fn punct_at(toks: &[Tok], i: usize, ch: char) -> bool {
    toks.get(i).is_some_and(|t| {
        t.kind == TokKind::Punct && t.text.len() == ch.len_utf8() && t.text.starts_with(ch)
    })
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i) {
        Some(t) if t.kind == TokKind::Ident => Some(&t.text),
        _ => None,
    }
}

/// Marks every token inside a `#[cfg(test)]`-gated item (or after an inner
/// `#![cfg(test)]`) as test code, where the strict-only rules do not apply.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !punct_at(toks, i, '#') {
            i += 1;
            continue;
        }
        let inner = punct_at(toks, i + 1, '!');
        let open = i + 1 + usize::from(inner);
        if !punct_at(toks, open, '[') {
            i += 1;
            continue;
        }
        // Scan the attribute body to its matching `]`.
        let mut j = open + 1;
        let mut depth = 1usize;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < toks.len() && depth > 0 {
            if punct_at(toks, j, '[') {
                depth += 1;
            } else if punct_at(toks, j, ']') {
                depth -= 1;
            } else if let Some(id) = ident_at(toks, j) {
                if id == "cfg" {
                    saw_cfg = true;
                } else if id == "test" {
                    saw_test = true;
                }
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            i = j;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole enclosing file is test-only.
            for m in mask.iter_mut().skip(i) {
                *m = true;
            }
            return mask;
        }
        // Skip any further attributes on the same item.
        let mut k = j;
        while punct_at(toks, k, '#') && punct_at(toks, k + 1, '[') {
            let mut d = 1usize;
            k += 2;
            while k < toks.len() && d > 0 {
                if punct_at(toks, k, '[') {
                    d += 1;
                } else if punct_at(toks, k, ']') {
                    d -= 1;
                }
                k += 1;
            }
        }
        // The gated item runs to its matching `}` (or a terminating `;`).
        let mut m = k;
        while m < toks.len() && !punct_at(toks, m, '{') && !punct_at(toks, m, ';') {
            m += 1;
        }
        let end = if punct_at(toks, m, '{') {
            let mut bd = 1usize;
            let mut n = m + 1;
            while n < toks.len() && bd > 0 {
                if punct_at(toks, n, '{') {
                    bd += 1;
                } else if punct_at(toks, n, '}') {
                    bd -= 1;
                }
                n += 1;
            }
            n
        } else {
            (m + 1).min(toks.len())
        };
        for flag in mask.iter_mut().take(end).skip(i) {
            *flag = true;
        }
        i = end;
    }
    mask
}

/// Whether a format-string literal (raw source text, quotes included) pairs
/// a JSON key (`":`) with a float-style placeholder (`{..:..[.e]..}`).
fn json_float_spec(text: &str) -> bool {
    if !text.contains("\":") {
        return false;
    }
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if i + 1 < bytes.len() && bytes[i + 1] == b'{' {
                i += 2; // escaped `{{`
                continue;
            }
            let close = bytes[i + 1..].iter().position(|&b| b == b'}');
            if let Some(off) = close {
                let inner = &text[i + 1..i + 1 + off];
                // A literal `{` inside a JSON *data* string (as opposed to a
                // format placeholder) drags quotes, spaces or commas into
                // `inner` — a real format spec never contains those.
                let speclike = !inner.contains(['"', '\\', ' ', ',', '{']);
                if speclike {
                    if let Some(spec) = inner.split_once(':').map(|(_, s)| s) {
                        if spec.contains('.') || spec.ends_with('e') || spec.ends_with('E') {
                            return true;
                        }
                    }
                    i += off + 2;
                    continue;
                }
            }
        }
        i += 1;
    }
    false
}

fn applies(rule: &str, rel_path: &str) -> bool {
    if rule == "env-var" {
        return !ENV_KNOBS.iter().any(|k| k.readers.contains(&rel_path));
    }
    !allowed_files(rule).contains(&rel_path)
}

/// Lints one Rust source file, returning all unsuppressed diagnostics.
/// This is the token-level (v1) path; the interprocedural pipeline goes
/// through [`analyze_source`] + the global pass in [`crate::run_with`].
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let strict = scope::classify(rel_path) == Strictness::Strict;
    let in_test = test_mask(&lexed.toks);
    let raw = token_diags(rel_path, &lexed.toks, &in_test, strict);
    let (mut out, sups) = pragma_table(rel_path, &lexed);
    let mut used = vec![false; sups.len()];
    out.extend(apply_suppressions(raw, &sups, &mut used));
    out
}

/// Everything the v2 pipeline derives from one source file: the raw
/// (pre-suppression) per-file diagnostics, the pragma suppression table,
/// and the facts the global interprocedural pass consumes.
#[derive(Debug, Default, Clone)]
pub struct FileAnalysis {
    /// Per-file diagnostics before pragma suppression (`bad-pragma`
    /// findings included — those are never suppressible).
    pub raw: Vec<Diagnostic>,
    /// The file's well-formed, reasoned suppressions.
    pub suppressions: Vec<Suppression>,
    /// Call/taint/schema facts for the global pass.
    pub facts: crate::dataflow::FileFacts,
}

/// The full per-file analysis: token rules, intraprocedural dataflow, and
/// fact extraction. `crates` maps `crates/<dir>` → package name for module
/// path resolution.
#[must_use]
pub fn analyze_source(
    rel_path: &str,
    src: &str,
    crates: &std::collections::BTreeMap<String, String>,
) -> FileAnalysis {
    let lexed = lexer::lex(src);
    let strict = scope::classify(rel_path) == Strictness::Strict;
    let in_test = test_mask(&lexed.toks);
    let mut raw = token_diags(rel_path, &lexed.toks, &in_test, strict);
    let (bad, suppressions) = pragma_table(rel_path, &lexed);
    raw.extend(bad);

    let idx = crate::resolve::index_file(rel_path, &lexed.toks, crates);
    let mut fns = Vec::new();
    for f in &idx.fns {
        let fn_in_test = in_test.get(f.decl).copied().unwrap_or(false);
        let report = strict && !fn_in_test;
        let mut facts =
            crate::dataflow::analyze_fn(rel_path, &idx, f, &lexed.toks, report, &mut raw);
        facts.in_test = fn_in_test;
        fns.push(facts);
    }
    // Schema emissions/registry only count from strict code: fixtures and
    // bench output are not telemetry contracts.
    let (emits, registry) = if strict {
        crate::schema_sync::scan(rel_path, &lexed.toks, &in_test)
    } else {
        (Vec::new(), Vec::new())
    };
    raw.retain(|d| applies(d.rule, rel_path));
    FileAnalysis {
        raw,
        suppressions,
        facts: crate::dataflow::FileFacts {
            fns,
            emits,
            registry,
        },
    }
}

/// Runs the token-sequence rules over one lexed file.
fn token_diags(rel_path: &str, toks: &[Tok], in_test: &[bool], strict: bool) -> Vec<Diagnostic> {
    let mut raw: Vec<Diagnostic> = Vec::new();
    let push = |rule: &'static str, line: u32, message: String, raw: &mut Vec<Diagnostic>| {
        raw.push(Diagnostic {
            rule,
            path: rel_path.to_string(),
            line,
            message,
        });
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        let strict_here = strict && !in_test[i];
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                name @ ("Instant" | "SystemTime") if applies("wall-clock", rel_path) => {
                    push(
                        "wall-clock",
                        t.line,
                        format!(
                            "wall-clock source `{name}` — simulated cycles are the only \
                             clock here; time through `patu_bench::micro` instead"
                        ),
                        &mut raw,
                    );
                }
                "thread"
                    if punct_at(toks, i + 1, ':')
                        && punct_at(toks, i + 2, ':')
                        && matches!(ident_at(toks, i + 3), Some("spawn" | "scope"))
                        && applies("thread-spawn", rel_path) =>
                {
                    let what = ident_at(toks, i + 3).unwrap_or("spawn");
                    push(
                        "thread-spawn",
                        t.line,
                        format!(
                            "`std::thread::{what}` outside `patu_sim::parallel` — use the \
                             deterministic task runner (`parallel::run_tasks`)"
                        ),
                        &mut raw,
                    );
                }
                "env"
                    if strict_here
                        && punct_at(toks, i + 1, ':')
                        && punct_at(toks, i + 2, ':')
                        && matches!(ident_at(toks, i + 3), Some("var" | "var_os" | "vars"))
                        && applies("env-var", rel_path) =>
                {
                    push(
                        "env-var",
                        t.line,
                        format!(
                            "`std::env::var` outside the config entry points — each \
                             knob ({}) is read once by the reader registered in \
                             `ENV_KNOBS`",
                            knob_names()
                        ),
                        &mut raw,
                    );
                }
                name @ ("HashMap" | "HashSet") if strict_here => {
                    push(
                        "hash-order",
                        t.line,
                        format!(
                            "`{name}` in library code can leak nondeterministic iteration \
                             order into outputs — use `BTreeMap`/`BTreeSet`, or sort at the \
                             site and justify with a pragma"
                        ),
                        &mut raw,
                    );
                }
                name @ ("unwrap" | "expect")
                    if strict_here
                        && punct_at(toks, i.wrapping_sub(1), '.')
                        && punct_at(toks, i + 1, '(') =>
                {
                    push(
                        "panic-path",
                        t.line,
                        format!(
                            "`.{name}()` in non-test library code — return a typed error, \
                             restructure to an infallible pattern, or justify with \
                             `patu-lint: allow(panic-path)`"
                        ),
                        &mut raw,
                    );
                }
                name @ ("panic" | "unreachable" | "todo" | "unimplemented")
                    if strict_here && punct_at(toks, i + 1, '!') =>
                {
                    push(
                        "panic-path",
                        t.line,
                        format!(
                            "`{name}!` in non-test library code — library crates report \
                             typed errors end-to-end"
                        ),
                        &mut raw,
                    );
                }
                "unsafe" => {
                    push(
                        "unsafe-code",
                        t.line,
                        "`unsafe` is forbidden workspace-wide".to_string(),
                        &mut raw,
                    );
                }
                _ => {}
            },
            // Test regions hold JSON *data* literals (schema fixtures), not
            // sinks — only live code feeds floats into artifacts.
            TokKind::Str
                if !in_test[i] && applies("float-fmt", rel_path) && json_float_spec(&t.text) =>
            {
                push(
                    "float-fmt",
                    t.line,
                    "float format spec inside a JSON literal — non-finite values \
                     would emit `inf`/`NaN`; route through `patu_obs::json::num` / \
                     `num_fixed`"
                        .to_string(),
                    &mut raw,
                );
            }
            _ => {}
        }
    }

    if scope::is_lib_root(rel_path) && !has_forbid_unsafe(toks) {
        raw.push(Diagnostic {
            rule: "unsafe-code",
            path: rel_path.to_string(),
            line: 1,
            message: "library crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    raw
}

fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    (0..toks.len()).any(|i| {
        ident_at(toks, i) == Some("forbid")
            && punct_at(toks, i + 1, '(')
            && ident_at(toks, i + 2) == Some("unsafe_code")
    })
}

/// One reasoned `allow(...)` pragma, resolved to the line it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Suppression {
    /// The rule the pragma allows.
    pub rule: String,
    /// The code line the pragma covers (its own line, or the next line
    /// bearing code when the pragma stands alone).
    pub target: u32,
    /// Where the pragma itself lives, for `unused-pragma` reporting.
    pub pragma_line: u32,
}

/// Validates pragmas, returning `bad-pragma` findings for the ill-formed
/// ones and a [`Suppression`] table for the rest. A pragma on a code line
/// covers that line; a pragma on its own line covers the next line bearing
/// code.
#[must_use]
pub fn pragma_table(rel_path: &str, lexed: &Lexed) -> (Vec<Diagnostic>, Vec<Suppression>) {
    let mut token_lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
    token_lines.sort_unstable();
    token_lines.dedup();

    let mut sups: Vec<Suppression> = Vec::new();
    let mut out: Vec<Diagnostic> = Vec::new();

    for p in &lexed.pragmas {
        if !p.well_formed {
            out.push(Diagnostic {
                rule: "bad-pragma",
                path: rel_path.to_string(),
                line: p.line,
                message: format!(
                    "unrecognized pragma — expected `{} allow(<rule>) — <reason>`",
                    lexer::PRAGMA_MARKER
                ),
            });
            continue;
        }
        if !p.has_reason {
            out.push(Diagnostic {
                rule: "bad-pragma",
                path: rel_path.to_string(),
                line: p.line,
                message: "suppression pragma needs a reason after `allow(...)`".to_string(),
            });
            continue;
        }
        let mut all_known = true;
        for rule in &p.rules {
            if !is_known_rule(rule) {
                all_known = false;
                out.push(Diagnostic {
                    rule: "bad-pragma",
                    path: rel_path.to_string(),
                    line: p.line,
                    message: format!("unknown rule `{rule}` in allow(...)"),
                });
            }
        }
        if !all_known {
            continue;
        }
        let target = if token_lines.binary_search(&p.line).is_ok() {
            p.line
        } else {
            let next = token_lines.partition_point(|&l| l <= p.line);
            token_lines.get(next).copied().unwrap_or(p.line)
        };
        for rule in &p.rules {
            sups.push(Suppression {
                rule: rule.clone(),
                target,
                pragma_line: p.line,
            });
        }
    }
    (out, sups)
}

/// Filters out diagnostics the suppressions cover, marking each
/// suppression that actually fired in `used` (same indexing as `sups`).
#[must_use]
pub fn apply_suppressions(
    raw: Vec<Diagnostic>,
    sups: &[Suppression],
    used: &mut [bool],
) -> Vec<Diagnostic> {
    raw.into_iter()
        .filter(|d| {
            let mut hit = false;
            for (i, s) in sups.iter().enumerate() {
                if s.rule == d.rule && s.target == d.line {
                    hit = true;
                    if let Some(u) = used.get_mut(i) {
                        *u = true;
                    }
                }
            }
            !hit
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/fake/src/engine.rs";
    const BIN: &str = "crates/bench/src/bin/fake.rs";

    fn rules_hit(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        lint_source(path, src)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn banned_tokens_in_strings_and_comments_are_ignored() {
        let src = "// .unwrap() HashMap Instant std::thread::spawn\n\
                   fn f() -> &'static str { \"Instant::now() HashMap unsafe\" }\n";
        assert!(rules_hit(LIB, src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(1).max(x.unwrap_or_default()) }\n";
        assert!(rules_hit(LIB, src).is_empty());
    }

    #[test]
    fn cfg_test_mod_is_exempt_from_strict_rules() {
        let src = "fn good() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashMap;\n\
                       #[test]\n\
                       fn t() { let m: HashMap<u32, u32> = HashMap::new(); \
                        assert_eq!(m.len(), 0); Some(1).unwrap(); }\n\
                   }\n";
        assert!(rules_hit(LIB, src).is_empty());
    }

    #[test]
    fn wall_clock_applies_even_to_test_mods_and_bins() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = Instant::now(); }\n}\n";
        assert_eq!(rules_hit(LIB, src), vec![("wall-clock", 3)]);
        assert_eq!(
            rules_hit(BIN, "fn main() { let _ = Instant::now(); }\n"),
            vec![("wall-clock", 1)]
        );
    }

    #[test]
    fn strict_rules_skip_relaxed_files() {
        let src =
            "fn main() { Some(1).unwrap(); let _ = std::collections::HashMap::<u8, u8>::new(); }\n";
        assert!(rules_hit(BIN, src).is_empty());
    }

    #[test]
    fn pragma_suppresses_exactly_its_line() {
        let src = "// patu-lint: allow(panic-path) — provably non-empty by construction\n\
                   fn f(v: &[u32]) -> u32 { v.first().copied().expect(\"non-empty\") }\n\
                   fn g(v: &[u32]) -> u32 { v.first().copied().expect(\"non-empty\") }\n";
        assert_eq!(rules_hit(LIB, src), vec![("panic-path", 3)]);
    }

    #[test]
    fn reasonless_or_unknown_pragmas_are_diagnosed() {
        let src = "// patu-lint: allow(panic-path)\n\
                   fn f(v: &[u32]) -> u32 { v.first().copied().expect(\"x\") }\n\
                   // patu-lint: allow(no-such-rule) — because\n\
                   fn g() {}\n";
        let hits = rules_hit(LIB, src);
        assert!(hits.contains(&("bad-pragma", 1)));
        assert!(
            hits.contains(&("panic-path", 2)),
            "reasonless pragma must not suppress"
        );
        assert!(hits.contains(&("bad-pragma", 3)));
    }

    #[test]
    fn json_float_spec_detection() {
        assert!(json_float_spec(r#""{{\"mean\": {:.1}}}""#));
        assert!(json_float_spec(r#""\"p90_ns\": {v:.3},""#));
        assert!(
            !json_float_spec(r#""{:>10.1} cycles""#),
            "not JSON — no key"
        );
        assert!(
            !json_float_spec(r#""\"count\": {}""#),
            "plain placeholder is fine"
        );
        assert!(!json_float_spec(r#""{{\"label\": \"{}\"}}""#));
        // JSON *data* (a literal `{` with quoted keys) is not a format sink.
        assert!(!json_float_spec(
            r#""{\"type\":\"hist\",\"mean\":2.5,\"p50\":8}""#
        ));
    }

    #[test]
    fn lib_root_without_forbid_is_flagged() {
        let hits = rules_hit("crates/fake/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(hits, vec![("unsafe-code", 1)]);
        let clean = rules_hit(
            "crates/fake/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        assert!(clean.is_empty());
    }

    #[test]
    fn registered_knob_readers_are_exempt_from_env_var() {
        let src = "pub fn knob() -> Option<String> { std::env::var(\"PATU_X\").ok() }\n";
        for knob in ENV_KNOBS {
            for reader in knob.readers {
                assert!(
                    rules_hit(reader, src).is_empty(),
                    "{reader} is the registered reader for {}",
                    knob.name
                );
            }
        }
        assert_eq!(rules_hit(LIB, src), vec![("env-var", 1)]);
    }

    #[test]
    fn ssim_sample_knob_reads_only_from_the_sampled_module() {
        // The sampled-MSSIM estimator resolves `PATU_SSIM_SAMPLE` itself;
        // every other quality or serve file must take the resolved fraction
        // as an argument.
        let src = "fn mode() -> Option<String> { std::env::var(\"PATU_SSIM_SAMPLE\").ok() }\n";
        assert!(rules_hit("crates/quality/src/sampled.rs", src).is_empty());
        assert_eq!(
            rules_hit("crates/quality/src/ssim.rs", src),
            vec![("env-var", 1)]
        );
        assert_eq!(
            rules_hit("crates/serve/src/exec.rs", src),
            vec![("env-var", 1)]
        );
    }

    #[test]
    fn temporal_knob_reads_only_from_the_temporal_config() {
        // `PATU_TEMPORAL` resolves once in the temporal crate's config
        // module; the sim render path and the serve layer take the resolved
        // `TemporalConfig` as a plain value.
        let src = "fn mode() -> Option<String> { std::env::var(\"PATU_TEMPORAL\").ok() }\n";
        assert!(rules_hit("crates/temporal/src/config.rs", src).is_empty());
        assert_eq!(
            rules_hit("crates/temporal/src/store.rs", src),
            vec![("env-var", 1)]
        );
        assert_eq!(
            rules_hit("crates/sim/src/render.rs", src),
            vec![("env-var", 1)]
        );
    }

    #[test]
    fn observability_knobs_read_only_from_their_obs_modules() {
        // `PATU_OBS_DUMP` resolves in the dump sink and `PATU_SLO` in the
        // SLO options; every other library file takes the parsed values
        // (dump dir, SloOptions) as arguments.
        let dump = "fn dir() -> Option<String> { std::env::var(\"PATU_OBS_DUMP\").ok() }\n";
        assert!(rules_hit("crates/obs/src/dump.rs", dump).is_empty());
        assert_eq!(
            rules_hit("crates/obs/src/sink.rs", dump),
            vec![("env-var", 1)]
        );
        let slo = "fn raw() -> Option<String> { std::env::var(\"PATU_SLO\").ok() }\n";
        assert!(rules_hit("crates/obs/src/slo.rs", slo).is_empty());
        assert_eq!(
            rules_hit("crates/serve/src/server.rs", slo),
            vec![("env-var", 1)]
        );
    }

    #[test]
    fn knob_table_is_well_formed() {
        let mut names: Vec<&str> = ENV_KNOBS.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ENV_KNOBS.len(), "knob names are unique");
        for knob in ENV_KNOBS {
            assert!(knob.name.starts_with("PATU_"), "{}", knob.name);
            assert!(!knob.readers.is_empty(), "{} has a reader", knob.name);
        }
        let diag = &rules_hit(LIB, "fn f() { std::env::var(\"X\").ok(); }\n");
        assert_eq!(diag, &[("env-var", 1)]);
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "#![cfg(test)]\nfn helper() { Some(1).unwrap(); }\n";
        assert!(rules_hit(LIB, src).is_empty());
    }
}
