//! The `schema-sync` rule: every JSONL `"type"` string emitted anywhere in
//! the workspace must match a registered entry in
//! `patu_obs::schema::LINE_TYPES`, and every registered entry must have at
//! least one live emission site — no unchecked lines, no dead schemas.
//!
//! Emissions are harvested from string literals in non-test library code
//! (`"type":"<name>"`, escaped or raw); the registry is the `LINE_TYPES`
//! const wherever it is defined. When a tree has no registry at all the
//! rule is vacuous — there is no contract to check.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

/// `(name, line)` pairs: JSONL type tags with where they appear.
pub type Tags = Vec<(String, u32)>;

/// One file's schema-relevant facts: `(rel_path, emissions, registry)`.
pub type FileTags = (String, Tags, Tags);

/// Scans one file's tokens for JSONL type emissions and registry entries.
/// `in_test` masks `#[cfg(test)]` regions (schema fixtures live there).
pub fn scan(rel_path: &str, toks: &[Tok], in_test: &[bool]) -> (Tags, Tags) {
    let mut emits = Vec::new();
    let mut registry = Vec::new();
    // The linter's own sources mention the emission pattern in literals
    // (fixtures, needles); they never emit telemetry.
    let lint_self = rel_path.starts_with("crates/lint/");

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Str && !in_test.get(i).copied().unwrap_or(false) && !lint_self {
            for name in extract_types(&t.text) {
                emits.push((name, t.line));
            }
        }
        if t.kind == TokKind::Ident
            && t.text == "LINE_TYPES"
            && !in_test.get(i).copied().unwrap_or(false)
        {
            // `pub const LINE_TYPES: [...] = [ "a", "b", ... ];` — only the
            // defining occurrence (preceded by `const`) counts.
            let is_def = matches!(toks.get(i.wrapping_sub(1)), Some(p) if p.kind == TokKind::Ident && p.text == "const");
            if is_def {
                let mut j = i + 1;
                // Seek the initializer `[`.
                while j < toks.len() && !toks[j].text.starts_with('=') {
                    j += 1;
                }
                let mut depth = 0usize;
                while j < toks.len() {
                    let tj = &toks[j];
                    if tj.text.starts_with('[') {
                        depth += 1;
                    } else if tj.text.starts_with(']') {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    } else if tj.kind == TokKind::Str && depth == 1 {
                        let name = tj.text.trim_matches('"').to_string();
                        registry.push((name, tj.line));
                    }
                    j += 1;
                }
                i = j;
            }
        }
        i += 1;
    }
    (emits, registry)
}

/// Extracts every `"type":"<name>"` occurrence from a literal's raw source
/// text (handles both escaped `\"type\":\"x\"` and raw `"type":"x"`).
fn extract_types(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for needle in ["\\\"type\\\":\\\"", "\"type\":\""] {
        let mut from = 0usize;
        while let Some(at) = text[from..].find(needle) {
            let start = from + at + needle.len();
            let name: String = text[start..]
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
                .collect();
            if !name.is_empty() && !out.contains(&name) {
                out.push(name);
            }
            from = start;
        }
    }
    out
}

/// The global two-way check over every file's emissions and registry.
pub fn check(files: &[FileTags]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let registry: Vec<(&String, &String, u32)> = files
        .iter()
        .flat_map(|(path, _, reg)| reg.iter().map(move |(n, l)| (path, n, *l)))
        .collect();
    if registry.is_empty() {
        return diags;
    }
    let registered: Vec<&str> = registry.iter().map(|(_, n, _)| n.as_str()).collect();
    let mut emitted: Vec<&str> = Vec::new();
    for (path, emits, _) in files {
        for (name, line) in emits {
            emitted.push(name.as_str());
            if !registered.contains(&name.as_str()) {
                diags.push(Diagnostic {
                    rule: "schema-sync",
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "JSONL line type `\"{name}\"` is emitted here but not registered \
                         in `patu_obs::schema::LINE_TYPES` — `check_line` would reject it; \
                         register the type (and its schema) or fix the string"
                    ),
                });
            }
        }
    }
    for (path, name, line) in &registry {
        if !emitted.contains(&name.as_str()) {
            diags.push(Diagnostic {
                rule: "schema-sync",
                path: (*path).clone(),
                line: *line,
                message: format!(
                    "dead schema: `\"{name}\"` is registered in `LINE_TYPES` but no \
                     non-test code emits it — remove the entry or the emitter it once \
                     validated"
                ),
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::rules;

    fn scan_src(path: &str, src: &str) -> (Tags, Tags) {
        let lexed = lexer::lex(src);
        let mask = rules::test_mask(&lexed.toks);
        scan(path, &lexed.toks, &mask)
    }

    #[test]
    fn emissions_are_extracted_from_escaped_and_raw_literals() {
        let src = "fn emit() -> String {\n\
                       format!(\"{{\\\"type\\\":\\\"frame\\\",\\\"n\\\":{}}}\", 1)\n\
                   }\n\
                   fn raw() -> &'static str { r#\"{\"type\":\"span\"}\"# }\n";
        let (emits, _) = scan_src("crates/obs/src/sink.rs", src);
        let names: Vec<&str> = emits.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["frame", "span"]);
    }

    #[test]
    fn test_regions_do_not_emit() {
        let src = "#[cfg(test)]\nmod tests {\n\
                       fn fixture() -> &'static str { r#\"{\"type\":\"mystery\"}\"# }\n\
                   }\n";
        let (emits, _) = scan_src("crates/obs/src/schema.rs", src);
        assert!(emits.is_empty(), "{emits:?}");
    }

    #[test]
    fn registry_entries_parse_from_line_types() {
        let src = "pub const LINE_TYPES: [&str; 2] = [\"frame\", \"span\"];\n";
        let (_, reg) = scan_src("crates/obs/src/schema.rs", src);
        let names: Vec<&str> = reg.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["frame", "span"]);
    }

    #[test]
    fn two_way_check_flags_unregistered_and_dead() {
        let files = vec![
            (
                "crates/obs/src/schema.rs".to_string(),
                vec![("frame".to_string(), 10)],
                vec![("frame".to_string(), 3), ("ghost".to_string(), 4)],
            ),
            (
                "crates/serve/src/server.rs".to_string(),
                vec![("rogue".to_string(), 20)],
                vec![],
            ),
        ];
        let diags = check(&files);
        let hits: Vec<(&str, u32)> = diags.iter().map(|d| (d.path.as_str(), d.line)).collect();
        assert_eq!(
            hits,
            vec![
                ("crates/serve/src/server.rs", 20),
                ("crates/obs/src/schema.rs", 4),
            ]
        );
        assert!(diags.iter().all(|d| d.rule == "schema-sync"));
    }

    #[test]
    fn no_registry_means_no_contract() {
        let files = vec![(
            "crates/a/src/lib.rs".to_string(),
            vec![("anything".to_string(), 1)],
            vec![],
        )];
        assert!(check(&files).is_empty());
    }
}
