//! SARIF 2.1.0 output for CI annotation, plus a structural validator.
//!
//! The writer emits the minimal static-analysis profile: one `run` with a
//! `tool.driver` carrying the full rule table, and one `result` per
//! diagnostic with a `physicalLocation`. The validator is a hand-rolled
//! recursive-descent JSON parser (the linter is deliberately zero-dep)
//! that checks the shape CI relies on: `version == "2.1.0"`, every result
//! names a rule declared by the driver, and every location has an
//! `artifactLocation.uri` plus a positive `startLine`.

use crate::diag::Diagnostic;
use crate::rules;
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the diagnostics as a SARIF 2.1.0 log (single run).
#[must_use]
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"patu-lint\",\n");
    let _ = writeln!(
        out,
        "          \"version\": \"{}\",",
        crate::cache::LINT_VERSION
    );
    out.push_str("          \"informationUri\": \"https://example.invalid/patu-lint\",\n");
    out.push_str("          \"rules\": [\n");
    let mut ids: Vec<(&str, &str)> = rules::RULES.iter().map(|r| (r.id, r.invariant)).collect();
    ids.push((
        "bad-pragma",
        "every pragma names known rules and carries a reason",
    ));
    for (i, (id, invariant)) in ids.iter().enumerate() {
        let _ = writeln!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}",
            esc(id),
            esc(invariant),
            if i + 1 < ids.len() { "," } else { "" }
        );
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let _ = writeln!(
            out,
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}{}",
            esc(d.rule),
            esc(&d.message),
            esc(&d.path),
            d.line,
            if i + 1 < diags.len() { "," } else { "" }
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Mini JSON parser — just enough structure to validate our own output and
// any SARIF a CI step hands back. Numbers are kept as f64, which is fine
// for line numbers.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (SARIF only needs integers).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered as (key, value) pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, or empty for non-arrays.
    #[must_use]
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    /// The string payload, when this is a string.
    #[must_use]
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk-copy the run of plain bytes up to the next quote or
            // escape — strings are overwhelmingly plain, and byte-at-a-time
            // copying dominated cache-load profiles.
            let start = self.i;
            while self.i < self.b.len() && self.b[self.i] != b'"' && self.b[self.i] != b'\\' {
                self.i += 1;
            }
            if self.i > start {
                let chunk = &self.b[start..self.i];
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
            }
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            if c == b'"' {
                return Ok(out);
            }
            let e = self.peek().ok_or("dangling escape")?;
            self.i += 1;
            match e {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'n' => out.push('\n'),
                b't' => out.push('\t'),
                b'r' => out.push('\r'),
                b'b' | b'f' => out.push(' '),
                b'u' => {
                    let hex = self
                        .b
                        .get(self.i..self.i + 4)
                        .and_then(|h| std::str::from_utf8(h).ok())
                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                        .ok_or("bad \\u escape")?;
                    self.i += 4;
                    out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("bad escape '\\{}'", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a description of the first syntax error (byte offset included).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes after document at {}", p.i));
    }
    Ok(v)
}

/// Validates a SARIF document's structure: the fields our CI consumes.
///
/// # Errors
///
/// Returns the first structural problem found, or a parse error.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    if doc.get("version").and_then(Json::str) != Some("2.1.0") {
        return Err("version must be \"2.1.0\"".to_string());
    }
    let runs = doc.get("runs").ok_or("missing runs")?.items();
    if runs.is_empty() {
        return Err("runs must be non-empty".to_string());
    }
    for run in runs {
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .ok_or("run missing tool.driver")?;
        if driver.get("name").and_then(Json::str).is_none() {
            return Err("driver missing name".to_string());
        }
        let declared: Vec<&str> = driver
            .get("rules")
            .map(Json::items)
            .unwrap_or(&[])
            .iter()
            .filter_map(|r| r.get("id").and_then(Json::str))
            .collect();
        for result in run.get("results").map(Json::items).unwrap_or(&[]) {
            let rule = result
                .get("ruleId")
                .and_then(Json::str)
                .ok_or("result missing ruleId")?;
            if !declared.contains(&rule) {
                return Err(format!("result rule `{rule}` not declared by driver"));
            }
            if result.get("message").and_then(|m| m.get("text")).is_none() {
                return Err("result missing message.text".to_string());
            }
            let locs = result.get("locations").map(Json::items).unwrap_or(&[]);
            if locs.is_empty() {
                return Err("result missing locations".to_string());
            }
            for loc in locs {
                let phys = loc
                    .get("physicalLocation")
                    .ok_or("location missing physicalLocation")?;
                if phys
                    .get("artifactLocation")
                    .and_then(|a| a.get("uri"))
                    .and_then(Json::str)
                    .is_none()
                {
                    return Err("location missing artifactLocation.uri".to_string());
                }
                match phys.get("region").and_then(|r| r.get("startLine")) {
                    Some(Json::Num(n)) if *n >= 1.0 => {}
                    _ => return Err("location missing positive region.startLine".to_string()),
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                rule: "wall-clock",
                path: "crates/sim/src/render.rs".to_string(),
                line: 12,
                message: "message with \"quotes\" and\nnewline".to_string(),
            },
            Diagnostic {
                rule: "schema-sync",
                path: "crates/obs/src/schema.rs".to_string(),
                line: 4,
                message: "dead schema".to_string(),
            },
        ]
    }

    #[test]
    fn writer_output_validates() {
        let text = to_sarif(&sample());
        validate(&text).expect("own output must validate");
    }

    #[test]
    fn empty_run_validates() {
        validate(&to_sarif(&[])).expect("empty results are valid");
    }

    #[test]
    fn results_and_locations_roundtrip() {
        let doc = parse(&to_sarif(&sample())).expect("parse");
        let results = doc.get("runs").expect("runs").items()[0]
            .get("results")
            .expect("results")
            .items()
            .to_vec();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").and_then(Json::str),
            Some("wall-clock")
        );
        let uri = results[1].get("locations").expect("locs").items()[0]
            .get("physicalLocation")
            .and_then(|p| p.get("artifactLocation"))
            .and_then(|a| a.get("uri"))
            .and_then(Json::str);
        assert_eq!(uri, Some("crates/obs/src/schema.rs"));
    }

    #[test]
    fn validator_rejects_wrong_version_and_unknown_rule() {
        let wrong = to_sarif(&[]).replace("2.1.0", "2.0.0");
        assert!(validate(&wrong).is_err());
        let rogue =
            to_sarif(&sample()).replace("\"ruleId\": \"wall-clock\"", "\"ruleId\": \"nope\"");
        assert!(validate(&rogue).is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = parse(r#"{"a": [1, {"b": "x\nyA"}, true, null, -2.5]}"#).expect("parse");
        let arr = doc.get("a").expect("a").items().to_vec();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1].get("b").and_then(Json::str), Some("x\nyA"));
        assert_eq!(arr[4], Json::Num(-2.5));
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1,2] trailing").is_err());
    }
}
