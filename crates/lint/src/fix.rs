//! The `--fix` engine: mechanical rewrites for the rules whose remedy is
//! unambiguous, and (under `--scaffold`) reasoned-TODO pragma insertion for
//! the rest.
//!
//! Rewrites:
//!
//! * `hash-order` — `HashMap`/`HashSet` → `BTreeMap`/`BTreeSet` on the
//!   diagnosed line, which also corrects `use std::collections::…` paths
//!   (the `use` line carries its own diagnostic).
//! * `float-fmt` — an inline-named float placeholder in a JSON literal,
//!   `{v:.3}`, becomes `{}` with `patu_obs::json::num_fixed(f64::from(v), 3)`
//!   appended to the macro's arguments. Only the inline-named form with the
//!   macro call closing on the same line is rewritten; anything else is
//!   reported as skipped rather than guessed at.
//!
//! Scaffolds insert `// patu-lint: allow(<rule>) — TODO(patu-lint --fix):
//! …` above the diagnosed line: the violation is suppressed but stays
//! greppable debt (and `--debt` flags the pragma if the violation is later
//! fixed for real).
//!
//! Fixes are idempotent by construction: a rewritten line no longer
//! triggers its rule, and a scaffolded line is suppressed, so a second
//! `--fix` pass finds nothing to change. `--fix --check` runs the same
//! engine dry and fails if any change *would* be made.

use crate::diag::Diagnostic;
use crate::LintError;
use std::collections::BTreeMap;
use std::path::Path;

/// Rules fixed by rewriting the diagnosed line.
const REWRITE_RULES: &[&str] = &["hash-order", "float-fmt"];

/// Rules eligible for a `--scaffold` pragma (suppressible, line-anchored).
const SCAFFOLD_RULES: &[&str] = &[
    "wall-clock",
    "thread-spawn",
    "panic-path",
    "env-var",
    "det-rng-discipline",
    "parallel-float-fold",
    "knob-at-construction",
    "schema-sync",
];

/// What one `--fix` run did (or, dry, would do).
#[derive(Debug, Default)]
pub struct FixReport {
    /// Files whose contents changed (repo-relative), with change counts.
    pub changed: Vec<(String, usize)>,
    /// Diagnostics no rewrite or scaffold applies to.
    pub skipped: Vec<Diagnostic>,
}

impl FixReport {
    /// Whether the run changed (or would change) anything.
    #[must_use]
    pub fn changed_anything(&self) -> bool {
        !self.changed.is_empty()
    }
}

/// Applies fixes for `diags` under `root`. With `dry`, nothing is written —
/// the report says what would change. With `scaffold`, unfixable-but-
/// suppressible diagnostics get TODO pragmas instead of being skipped.
///
/// # Errors
///
/// Returns [`LintError`] when a diagnosed file cannot be read or written.
pub fn run_fix(
    root: &Path,
    diags: &[Diagnostic],
    scaffold: bool,
    dry: bool,
) -> Result<FixReport, LintError> {
    let mut report = FixReport::default();
    let mut by_path: BTreeMap<&str, Vec<&Diagnostic>> = BTreeMap::new();
    for d in diags {
        by_path.entry(d.path.as_str()).or_default().push(d);
    }
    for (path, file_diags) in by_path {
        let full = root.join(path);
        let src = std::fs::read_to_string(&full).map_err(|source| LintError {
            context: format!("reading {} for --fix", full.display()),
            source,
        })?;
        let had_trailing_newline = src.ends_with('\n');
        let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
        let mut edits = 0usize;

        // Bottom-up so insertions above a line don't shift later targets.
        let mut ordered: Vec<&Diagnostic> = file_diags;
        ordered.sort_by_key(|d| std::cmp::Reverse(d.line));
        for d in ordered {
            let Some(idx) = (d.line as usize)
                .checked_sub(1)
                .filter(|i| *i < lines.len())
            else {
                report.skipped.push(d.clone());
                continue;
            };
            if REWRITE_RULES.contains(&d.rule) {
                let rewritten = match d.rule {
                    "hash-order" => rewrite_hash_order(&lines[idx]),
                    _ => rewrite_float_fmt(&lines[idx]),
                };
                match rewritten {
                    Some(new_line) if new_line != lines[idx] => {
                        lines[idx] = new_line;
                        edits += 1;
                    }
                    // Already rewritten by an earlier same-line diagnostic.
                    Some(_) => {}
                    None => report.skipped.push(d.clone()),
                }
            } else if scaffold && SCAFFOLD_RULES.contains(&d.rule) {
                let indent: String = lines[idx]
                    .chars()
                    .take_while(|c| c.is_whitespace())
                    .collect();
                lines.insert(
                    idx,
                    format!(
                        "{indent}// patu-lint: allow({}) — TODO(patu-lint --fix): justify \
                         this suppression or fix the violation",
                        d.rule
                    ),
                );
                edits += 1;
            } else {
                report.skipped.push(d.clone());
            }
        }
        if edits > 0 {
            if !dry {
                let mut out = lines.join("\n");
                if had_trailing_newline {
                    out.push('\n');
                }
                std::fs::write(&full, out).map_err(|source| LintError {
                    context: format!("writing {} for --fix", full.display()),
                    source,
                })?;
            }
            report.changed.push((path.to_string(), edits));
        }
    }
    report
        .skipped
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// `HashMap`/`HashSet` → the BTree equivalents, everywhere on the line
/// (covers both the use-path and the type positions).
fn rewrite_hash_order(line: &str) -> Option<String> {
    if !line.contains("HashMap") && !line.contains("HashSet") {
        return None;
    }
    Some(
        line.replace("HashMap", "BTreeMap")
            .replace("HashSet", "BTreeSet"),
    )
}

/// Rewrites inline-named float placeholders (`{v:.3}`) in the line's first
/// float-bearing string literal to `{}` + `num_fixed` arguments. Returns
/// `None` when the pattern is not the safe, mechanical one.
fn rewrite_float_fmt(line: &str) -> Option<String> {
    let (lit_start, lit_end) = first_plain_literal(line)?;
    let lit = &line[lit_start..lit_end];
    let (new_lit, args) = rewrite_placeholders(lit)?;
    if args.is_empty() {
        return None;
    }
    // Find the macro call's closing paren after the literal: the first `)`
    // at depth 0. If the call spans lines we refuse rather than guess.
    let tail = &line[lit_end..];
    let mut depth = 0i32;
    let mut insert_at = None;
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in tail.char_indices() {
        if in_str {
            if prev_escape {
                prev_escape = false;
            } else if c == '\\' {
                prev_escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '(' => depth += 1,
            ')' => {
                if depth == 0 {
                    insert_at = Some(lit_end + i);
                    break;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    let insert_at = insert_at?;
    let added: Vec<String> = args
        .iter()
        .map(|(name, prec)| format!("patu_obs::json::num_fixed(f64::from({name}), {prec})"))
        .collect();
    Some(format!(
        "{}{}{}, {}{}",
        &line[..lit_start],
        new_lit,
        &line[lit_end..insert_at],
        added.join(", "),
        &line[insert_at..]
    ))
}

/// Bounds (inclusive quotes) of the first non-raw string literal holding a
/// float placeholder.
fn first_plain_literal(line: &str) -> Option<(usize, usize)> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'"' && !matches!(i.checked_sub(1).map(|p| bytes[p]), Some(b'#' | b'r')) {
            let start = i;
            i += 1;
            let mut escape = false;
            while i < bytes.len() {
                let c = bytes[i];
                if escape {
                    escape = false;
                } else if c == b'\\' {
                    escape = true;
                } else if c == b'"' {
                    let end = i + 1;
                    let lit = &line[start..end];
                    if rewrite_placeholders(lit).is_some_and(|(_, args)| !args.is_empty()) {
                        return Some((start, end));
                    }
                    break;
                }
                i += 1;
            }
        }
        i += 1;
    }
    None
}

/// Rewrites every `{ident:.digits}` in the literal to `{}`; returns the new
/// literal and the (ident, digits) list, or `None` when a float placeholder
/// exists in a form the rewrite cannot handle (positional, width, exp).
fn rewrite_placeholders(lit: &str) -> Option<(String, Vec<(String, String)>)> {
    let mut out = String::with_capacity(lit.len());
    let mut args = Vec::new();
    let bytes = lit.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if bytes.get(i + 1) == Some(&b'{') {
                out.push_str("{{");
                i += 2;
                continue;
            }
            let close = bytes[i + 1..].iter().position(|&b| b == b'}');
            if let Some(off) = close {
                let inner = &lit[i + 1..i + 1 + off];
                let speclike = !inner.contains(['"', '\\', ' ', ',', '{']);
                if speclike {
                    if let Some((name, spec)) = inner.split_once(':') {
                        let floaty =
                            spec.contains('.') || spec.ends_with('e') || spec.ends_with('E');
                        if floaty {
                            let prec = spec.strip_prefix('.')?;
                            let named = !name.is_empty()
                                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                                && !name.starts_with(|c: char| c.is_ascii_digit());
                            if !named
                                || prec.is_empty()
                                || !prec.bytes().all(|b| b.is_ascii_digit())
                            {
                                return None;
                            }
                            out.push_str("{}");
                            args.push((name.to_string(), prec.to_string()));
                            i += off + 2;
                            continue;
                        }
                    }
                }
            }
        }
        // Copy one full UTF-8 char.
        let ch = lit[i..].chars().next()?;
        out.push(ch);
        i += ch.len_utf8();
    }
    Some((out, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_order_rewrites_types_and_use_paths() {
        assert_eq!(
            rewrite_hash_order("use std::collections::{HashMap, HashSet};").as_deref(),
            Some("use std::collections::{BTreeMap, BTreeSet};")
        );
        assert_eq!(
            rewrite_hash_order("    let m: HashMap<u32, f64> = HashMap::new();").as_deref(),
            Some("    let m: BTreeMap<u32, f64> = BTreeMap::new();")
        );
        assert!(rewrite_hash_order("let x = 1;").is_none());
    }

    #[test]
    fn float_fmt_rewrites_inline_named_placeholders() {
        let line = r#"        format!("{{\"mean\": {mean:.3}, \"n\": {n}}}")"#;
        let fixed = rewrite_float_fmt(line).expect("fixable");
        assert_eq!(
            fixed,
            r#"        format!("{{\"mean\": {}, \"n\": {n}}}", patu_obs::json::num_fixed(f64::from(mean), 3))"#
        );
    }

    #[test]
    fn float_fmt_appends_inside_the_right_paren() {
        let line = r#"    writeln!(out, "\"p90\": {p90:.1},").ok();"#;
        let fixed = rewrite_float_fmt(line).expect("fixable");
        assert_eq!(
            fixed,
            r#"    writeln!(out, "\"p90\": {},", patu_obs::json::num_fixed(f64::from(p90), 1)).ok();"#
        );
    }

    #[test]
    fn positional_and_exotic_specs_are_refused() {
        assert!(rewrite_float_fmt(r#"format!("\"x\": {:.2}", v)"#).is_none());
        assert!(rewrite_float_fmt(r#"format!("\"x\": {v:e}")"#).is_none());
        assert!(rewrite_float_fmt(r#"format!("\"x\": {v:>8.2}")"#).is_none());
    }

    #[test]
    fn fix_is_idempotent_on_a_temp_tree() {
        let dir = std::env::temp_dir().join(format!("patu-lint-fix-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let file = dir.join("crates/fake/src/engine.rs");
        std::fs::create_dir_all(file.parent().expect("parent")).expect("mkdirs");
        std::fs::write(
            &file,
            "use std::collections::HashMap;\n\
             pub fn emit(mean: f64) -> String {\n\
                 let _m: HashMap<u32, u32> = HashMap::new();\n\
                 format!(\"{{\\\"mean\\\": {mean:.2}}}\")\n\
             }\n",
        )
        .expect("write");

        let rel = "crates/fake/src/engine.rs";
        let lint = |root: &Path| {
            let src = std::fs::read_to_string(root.join(rel)).expect("read");
            crate::rules::lint_source(rel, &src)
        };
        let before = lint(&dir);
        assert!(before.iter().any(|d| d.rule == "hash-order"));
        assert!(before.iter().any(|d| d.rule == "float-fmt"));

        let report = run_fix(&dir, &before, false, false).expect("fix");
        assert_eq!(report.changed.len(), 1);
        let after = lint(&dir);
        assert!(
            after
                .iter()
                .all(|d| d.rule != "hash-order" && d.rule != "float-fmt"),
            "{after:?}"
        );

        // Second pass: nothing left to do, dry or wet.
        let again = run_fix(&dir, &after, false, true).expect("dry");
        assert!(!again.changed_anything(), "{again:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scaffold_inserts_a_suppressing_todo_pragma() {
        let dir = std::env::temp_dir().join(format!("patu-lint-scaffold-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let file = dir.join("crates/fake/src/engine.rs");
        std::fs::create_dir_all(file.parent().expect("parent")).expect("mkdirs");
        std::fs::write(
            &file,
            "pub fn f(v: &[u32]) -> u32 {\n    v.first().copied().expect(\"non-empty\")\n}\n",
        )
        .expect("write");
        let rel = "crates/fake/src/engine.rs";
        let before = crate::rules::lint_source(rel, &std::fs::read_to_string(&file).expect("read"));
        assert_eq!(before.len(), 1);
        assert_eq!(before[0].rule, "panic-path");

        // Without --scaffold the diagnostic is skipped, not guessed at.
        let plain = run_fix(&dir, &before, false, false).expect("fix");
        assert!(!plain.changed_anything());
        assert_eq!(plain.skipped.len(), 1);

        let report = run_fix(&dir, &before, true, false).expect("scaffold");
        assert!(report.changed_anything());
        let fixed = std::fs::read_to_string(&file).expect("read");
        assert!(fixed.contains("    // patu-lint: allow(panic-path) — TODO"));
        let after = crate::rules::lint_source(rel, &fixed);
        assert!(after.is_empty(), "{after:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
