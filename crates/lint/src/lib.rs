//! `patu-lint` — the workspace invariant checker.
//!
//! PRs 1–3 established three promises that ordinary tests can only probe
//! after the fact: simulator output is bit-identical across `PATU_THREADS`
//! settings, library crates report typed errors instead of panicking, and
//! telemetry reduces to a single gated branch when `PATU_TRACE=off`. This
//! crate enforces those promises *statically*: a small token-level Rust
//! lexer (comment-, string- and attribute-aware — no `syn`, no external
//! dependencies at all) feeds a rule engine that walks every `.rs` file and
//! `Cargo.toml` in the workspace and reports `file:line` diagnostics.
//!
//! The rules (see [`rules::RULES`] for the machine-readable table):
//!
//! | id             | invariant                                                            |
//! |----------------|----------------------------------------------------------------------|
//! | `wall-clock`   | no `Instant`/`SystemTime` outside `patu_bench::micro`                |
//! | `thread-spawn` | no `std::thread::{spawn,scope}` outside `patu_sim::parallel`         |
//! | `panic-path`   | no `unwrap`/`expect`/`panic!`/`unreachable!` in non-test library code|
//! | `hash-order`   | no `HashMap`/`HashSet` in non-test library code (`BTreeMap` instead) |
//! | `env-var`      | no `std::env::var` outside the readers in [`rules::ENV_KNOBS`]       |
//! | `float-fmt`    | floats enter JSON via `patu_obs::json::{num,num_fixed}`, never `{:.N}`|
//! | `unsafe-code`  | `unsafe` forbidden workspace-wide; every lib root carries the forbid |
//! | `extern-dep`   | every `Cargo.toml` dependency is a `path` dependency (offline/0-dep) |
//!
//! Since v2 the linter is *interprocedural*: an item parser ([`resolve`])
//! feeds per-function taint summaries ([`dataflow`]) into a workspace call
//! graph ([`callgraph`]), adding four rules a single-file scan cannot
//! check, plus a debt finding:
//!
//! | id                     | invariant                                                      |
//! |------------------------|----------------------------------------------------------------|
//! | `det-rng-discipline`   | RNG streams cross partition boundaries only as `fork(id)` children, even through calls |
//! | `parallel-float-fold`  | no float reduction grouped/ordered by the thread count, even via a helper |
//! | `knob-at-construction` | no `env::var` on any call path reachable from `render_frame`/`run_session` |
//! | `schema-sync`          | emitted JSONL `"type"` tags ↔ `LINE_TYPES` registry, both directions |
//! | `unused-pragma`        | (`--debt`) every reasoned `allow(...)` still suppresses something |
//!
//! Supporting machinery: `--incremental` caches each file's full analysis
//! by content hash under `target/patu-lint/` ([`cache`]; the global pass
//! always recomputes from cached facts, so invalidation is by
//! construction), `--fix` applies the mechanical rewrites and `--fix
//! --check` is the CI dry-run gate ([`fix`]), and `--format sarif` /
//! `--check-sarif` emit and validate SARIF 2.1.0 ([`sarif`]).
//!
//! Scoping: library-crate sources are checked strictly; `crates/bench`,
//! `crates/lint` test fixtures, `tests/`, `benches/`, `examples/` and
//! `src/bin/` targets are relaxed (panic/hash/env rules off, determinism
//! rules still on). `#[cfg(test)]` regions inside library crates are
//! relaxed the same way. A violation that is genuinely unreachable can be
//! suppressed inline with a reasoned pragma:
//!
//! ```text
//! // patu-lint: allow(panic-path) — worker panics must propagate verbatim
//! ```
//!
//! A pragma without a reason, or naming an unknown rule, is itself a
//! diagnostic (`bad-pragma`).
//!
//! Run it as `cargo run -p patu-lint --release -- --format json`; exit code
//! 0 means the workspace is clean, 1 means violations, 2 means I/O failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod callgraph;
pub mod dataflow;
pub mod diag;
pub mod fix;
pub mod lexer;
pub mod manifest;
pub mod resolve;
pub mod rules;
pub mod sarif;
pub mod schema_sync;
pub mod scope;
pub mod walk;

use std::path::Path;

pub use diag::{to_json, Diagnostic};

/// A failure of the linter itself (not a lint finding): unreadable file,
/// missing root, and the like.
#[derive(Debug)]
pub struct LintError {
    /// What the linter was doing when it failed.
    pub context: String,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.context, self.source)
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// How a lint run should behave beyond the defaults.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Reuse (and refresh) the per-file analysis cache under
    /// `target/patu-lint/`. The global interprocedural pass always reruns.
    pub incremental: bool,
    /// Report `unused-pragma` findings: reasoned suppressions that no
    /// longer suppress anything.
    pub debt: bool,
}

/// What a full lint run produced.
#[derive(Debug, Default)]
pub struct Outcome {
    /// All unsuppressed diagnostics, in path-then-line order.
    pub diags: Vec<Diagnostic>,
    /// How many workspace files were considered.
    pub files: usize,
    /// How many `.rs` analyses came from the incremental cache.
    pub reused: usize,
}

/// Lints every `.rs` and `Cargo.toml` under `root` (skipping `target/`,
/// `out/`, `.git/` and lint-fixture directories), returning all diagnostics
/// in deterministic path-then-line order. Equivalent to [`run_with`] with
/// default [`Options`].
///
/// # Errors
///
/// Returns [`LintError`] when the tree cannot be walked or a file cannot be
/// read — never for lint findings, which are data, not errors.
pub fn run(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    run_with(root, &Options::default()).map(|o| o.diags)
}

/// The full v2 pipeline: per-file token + dataflow analysis (cached when
/// `incremental`), then the global interprocedural pass (call graph, knob
/// reachability, float-fmt chains, schema sync), then pragma suppression.
///
/// # Errors
///
/// Returns [`LintError`] when the tree cannot be walked or a file cannot be
/// read. A cache that cannot be *written* is ignored (next run is cold).
pub fn run_with(root: &Path, opts: &Options) -> Result<Outcome, LintError> {
    let files = walk::workspace_files(root)?;
    let read = |rel: &str| -> Result<String, LintError> {
        let full = root.join(rel);
        std::fs::read_to_string(&full).map_err(|source| LintError {
            context: format!("reading {}", full.display()),
            source,
        })
    };

    // Manifests first: they both lint and name the crates, and module-path
    // resolution for every `.rs` file needs the crate names.
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut crates: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    let mut rs_files: Vec<String> = Vec::new();
    for rel in &files {
        if rel.ends_with("Cargo.toml") {
            let src = read(rel)?;
            diags.extend(manifest::lint_manifest(rel, &src));
            if let (Some(dir), Some(name)) = (rel.strip_suffix("/Cargo.toml"), package_name(&src)) {
                crates.insert(dir.to_string(), name.replace('-', "_"));
            }
        } else {
            rs_files.push(rel.clone());
        }
    }

    let fingerprint = cache::workspace_fingerprint(&rs_files);
    let mut file_cache = if opts.incremental {
        cache::Cache::load(root, fingerprint)
    } else {
        cache::Cache::default()
    };

    let mut hashes: Vec<(String, u64)> = Vec::with_capacity(rs_files.len());
    let mut reused = 0usize;
    for rel in &rs_files {
        let src = read(rel)?;
        let hash = cache::fnv1a(src.as_bytes());
        if file_cache.get(rel, hash).is_some() {
            reused += 1;
        } else {
            file_cache.put(rel, hash, rules::analyze_source(rel, &src, &crates));
        }
        hashes.push((rel.clone(), hash));
    }

    // The global pass always recomputes from the (possibly cached) facts:
    // any edit can change interprocedural conclusions for its whole
    // dependency closure, so invalidation is by construction. The facts
    // are borrowed in place — a warm run clones nothing.
    let mut facts: std::collections::BTreeMap<String, &dataflow::FileFacts> =
        std::collections::BTreeMap::new();
    for (rel, hash) in &hashes {
        if let Some(a) = file_cache.get(rel, *hash) {
            facts.insert(rel.clone(), &a.facts);
        }
    }
    let mut global = callgraph::check(&facts);
    global.extend(callgraph::float_chain(&facts));
    let schema_files: Vec<schema_sync::FileTags> = facts
        .iter()
        .map(|(p, f)| (p.clone(), f.emits.clone(), f.registry.clone()))
        .collect();
    global.extend(schema_sync::check(&schema_files));

    // Suppression: each file's pragmas cover its own per-file *and* global
    // diagnostics; unused pragmas become debt findings on request.
    for (rel, hash) in &hashes {
        let Some(analysis) = file_cache.get(rel, *hash) else {
            continue;
        };
        let mut raw = analysis.raw.clone();
        raw.extend(global.iter().filter(|d| &d.path == rel).cloned());
        let mut used = vec![false; analysis.suppressions.len()];
        diags.extend(rules::apply_suppressions(
            raw,
            &analysis.suppressions,
            &mut used,
        ));
        if opts.debt {
            for (sup, fired) in analysis.suppressions.iter().zip(&used) {
                if !fired {
                    diags.push(Diagnostic {
                        rule: "unused-pragma",
                        path: rel.clone(),
                        line: sup.pragma_line,
                        message: format!(
                            "`allow({})` no longer suppresses anything — the violation \
                             it covered is gone; remove the pragma",
                            sup.rule
                        ),
                    });
                }
            }
        }
    }

    if opts.incremental {
        file_cache.retain_paths(&rs_files);
        // Best-effort: a cache that cannot persist only costs the next run.
        let _ = file_cache.store(root, fingerprint);
    }

    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(Outcome {
        diags,
        files: files.len(),
        reused,
    })
}

/// Pulls `name = "..."` out of a manifest's `[package]` section.
fn package_name(src: &str) -> Option<String> {
    let mut in_package = false;
    for line in src.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}
