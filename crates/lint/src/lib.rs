//! `patu-lint` — the workspace invariant checker.
//!
//! PRs 1–3 established three promises that ordinary tests can only probe
//! after the fact: simulator output is bit-identical across `PATU_THREADS`
//! settings, library crates report typed errors instead of panicking, and
//! telemetry reduces to a single gated branch when `PATU_TRACE=off`. This
//! crate enforces those promises *statically*: a small token-level Rust
//! lexer (comment-, string- and attribute-aware — no `syn`, no external
//! dependencies at all) feeds a rule engine that walks every `.rs` file and
//! `Cargo.toml` in the workspace and reports `file:line` diagnostics.
//!
//! The rules (see [`rules::RULES`] for the machine-readable table):
//!
//! | id             | invariant                                                            |
//! |----------------|----------------------------------------------------------------------|
//! | `wall-clock`   | no `Instant`/`SystemTime` outside `patu_bench::micro`                |
//! | `thread-spawn` | no `std::thread::{spawn,scope}` outside `patu_sim::parallel`         |
//! | `panic-path`   | no `unwrap`/`expect`/`panic!`/`unreachable!` in non-test library code|
//! | `hash-order`   | no `HashMap`/`HashSet` in non-test library code (`BTreeMap` instead) |
//! | `env-var`      | no `std::env::var` outside the readers in [`rules::ENV_KNOBS`]       |
//! | `float-fmt`    | floats enter JSON via `patu_obs::json::{num,num_fixed}`, never `{:.N}`|
//! | `unsafe-code`  | `unsafe` forbidden workspace-wide; every lib root carries the forbid |
//! | `extern-dep`   | every `Cargo.toml` dependency is a `path` dependency (offline/0-dep) |
//!
//! Scoping: library-crate sources are checked strictly; `crates/bench`,
//! `crates/lint` test fixtures, `tests/`, `benches/`, `examples/` and
//! `src/bin/` targets are relaxed (panic/hash/env rules off, determinism
//! rules still on). `#[cfg(test)]` regions inside library crates are
//! relaxed the same way. A violation that is genuinely unreachable can be
//! suppressed inline with a reasoned pragma:
//!
//! ```text
//! // patu-lint: allow(panic-path) — worker panics must propagate verbatim
//! ```
//!
//! A pragma without a reason, or naming an unknown rule, is itself a
//! diagnostic (`bad-pragma`).
//!
//! Run it as `cargo run -p patu-lint --release -- --format json`; exit code
//! 0 means the workspace is clean, 1 means violations, 2 means I/O failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod scope;
pub mod walk;

use std::path::Path;

pub use diag::{to_json, Diagnostic};

/// A failure of the linter itself (not a lint finding): unreadable file,
/// missing root, and the like.
#[derive(Debug)]
pub struct LintError {
    /// What the linter was doing when it failed.
    pub context: String,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.context, self.source)
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Lints every `.rs` and `Cargo.toml` under `root` (skipping `target/`,
/// `out/`, `.git/` and lint-fixture directories), returning all diagnostics
/// in deterministic path-then-line order.
///
/// # Errors
///
/// Returns [`LintError`] when the tree cannot be walked or a file cannot be
/// read — never for lint findings, which are data, not errors.
pub fn run(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    let files = walk::workspace_files(root)?;
    let mut diags = Vec::new();
    for rel in &files {
        let full = root.join(rel);
        let src = std::fs::read_to_string(&full).map_err(|source| LintError {
            context: format!("reading {}", full.display()),
            source,
        })?;
        if rel.ends_with("Cargo.toml") {
            diags.extend(manifest::lint_manifest(rel, &src));
        } else {
            diags.extend(rules::lint_source(rel, &src));
        }
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(diags)
}
