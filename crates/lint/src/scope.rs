//! Per-file strictness: which rule set a file is held to.
//!
//! Library-crate sources carry the workspace's determinism and
//! error-hygiene promises, so they get the full rule set. Everything that
//! only *drives* the libraries — the bench harness, integration tests,
//! bench targets, examples, and binary entry points — may panic on broken
//! invariants and use whatever collections it likes, but still may not
//! reach for wall clocks, unstructured threads, or `unsafe`.

/// How strictly a file is linted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// Full rule set: library crate source.
    Strict,
    /// Determinism rules only: harness, tests, benches, examples, bins.
    Relaxed,
}

/// Classifies a repo-relative path (forward slashes).
pub fn classify(rel_path: &str) -> Strictness {
    let p = rel_path;
    if !p.starts_with("crates/") {
        // Top-level tests/ and examples/ (compiled as patu-sim targets).
        return Strictness::Relaxed;
    }
    if p.starts_with("crates/bench/") {
        return Strictness::Relaxed;
    }
    if p.contains("/tests/") || p.contains("/benches/") || p.contains("/examples/") {
        return Strictness::Relaxed;
    }
    if p.contains("/src/bin/") || p.ends_with("/src/main.rs") {
        return Strictness::Relaxed;
    }
    Strictness::Strict
}

/// Whether `rel_path` is a library crate root (`crates/<name>/src/lib.rs`),
/// which must carry `#![forbid(unsafe_code)]`.
pub fn is_lib_root(rel_path: &str) -> bool {
    let Some(rest) = rel_path.strip_prefix("crates/") else {
        return false;
    };
    let mut parts = rest.split('/');
    matches!(
        (parts.next(), parts.next(), parts.next(), parts.next()),
        (Some(_), Some("src"), Some("lib.rs"), None)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_sources_are_strict() {
        for p in [
            "crates/gpu/src/memsys.rs",
            "crates/sim/src/render.rs",
            "crates/lint/src/rules.rs",
            "crates/obs/src/json.rs",
        ] {
            assert_eq!(classify(p), Strictness::Strict, "{p}");
        }
    }

    #[test]
    fn harness_and_test_targets_are_relaxed() {
        for p in [
            "crates/bench/src/micro.rs",
            "crates/bench/src/bin/headline.rs",
            "crates/bench/benches/raster.rs",
            "crates/gpu/tests/props.rs",
            "crates/lint/src/main.rs",
            "tests/parallel_determinism.rs",
            "examples/quickstart.rs",
        ] {
            assert_eq!(classify(p), Strictness::Relaxed, "{p}");
        }
    }

    #[test]
    fn lib_roots_are_recognized() {
        assert!(is_lib_root("crates/gpu/src/lib.rs"));
        assert!(!is_lib_root("crates/gpu/src/memsys.rs"));
        assert!(!is_lib_root("crates/gpu/tests/lib.rs"));
        assert!(!is_lib_root("tests/lib.rs"));
    }
}
