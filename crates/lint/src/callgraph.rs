//! The workspace call graph and the interprocedural rules that run on it.
//!
//! Nodes are every function the item parser found (excluding
//! `#[cfg(test)]` functions, which never resolve as targets); edges come
//! from the per-function [`CallFact`]s. Path calls resolve by crate +
//! suffix (so re-exports like `patu_gmath::DetRng` match the defining
//! module `patu_gmath::rng::DetRng`); method calls resolve by unique-ish
//! bare name with the common `std` method names blocklisted — a documented
//! under-approximation that keeps the graph precise enough for the rules
//! below.
//!
//! Rules implemented here:
//!
//! * `knob-at-construction` — a breadth-first reachability sweep from the
//!   entry points (`render_frame`, `run_session`) flags every
//!   `std::env::var` read on a reachable path: knobs are resolved in config
//!   constructors, never mid-render or mid-serve.
//! * `det-rng-discipline` (interprocedural half) — a call that passes an
//!   RNG stream to a function whose summary says the matching parameter
//!   crosses a partition boundary is flagged at the call site.
//! * `parallel-float-fold` (interprocedural half) — a call that passes a
//!   thread-derived value to a function whose summary says the matching
//!   parameter groups a float reduction is flagged at the call site.

use crate::dataflow::FileFacts;
use crate::diag::Diagnostic;
use crate::scope::{self, Strictness};
use std::collections::BTreeMap;

/// Functions whose names mark the render/serve entry points for
/// `knob-at-construction` reachability.
pub const ENTRY_POINTS: &[&str] = &["render_frame", "run_session"];

/// Files exempt from `parallel-float-fold` summaries and call-site checks:
/// they *are* the ordered-merge implementations.
pub const FOLD_EXEMPT: &[&str] = &["crates/sim/src/parallel.rs", "crates/quality/src/par.rs"];

struct Node<'a> {
    path: &'a str,
    facts: &'a crate::dataflow::FnFacts,
}

/// Runs every interprocedural rule over the per-file facts. `files` maps
/// repo-relative path → that file's [`FileFacts`] (owned or borrowed, so a
/// warm incremental run can feed cached facts without cloning them).
pub fn check<F: std::borrow::Borrow<FileFacts>>(files: &BTreeMap<String, F>) -> Vec<Diagnostic> {
    let mut nodes: Vec<Node<'_>> = Vec::new();
    for (path, facts) in files {
        for f in &facts.borrow().fns {
            if !f.in_test {
                nodes.push(Node { path, facts: f });
            }
        }
    }
    // Name index for resolution.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.facts.name.as_str()).or_default().push(i);
    }
    let resolve = |target: &str| -> Vec<usize> {
        if let Some(method) = target.strip_prefix("M:") {
            return by_name.get(method).cloned().unwrap_or_default();
        }
        let Some(path) = target.strip_prefix("P:") else {
            return Vec::new();
        };
        let Some(last) = path.rsplit("::").next() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &i in by_name.get(last).map(Vec::as_slice).unwrap_or(&[]) {
            let qual = nodes[i].facts.qual.as_str();
            if qual == path {
                out.push(i);
                continue;
            }
            // Crate + suffix match: `patu_gmath::DetRng::new` resolves to
            // `patu_gmath::rng::DetRng::new`.
            let krate = qual.split("::").next().unwrap_or("");
            if !krate.is_empty() && path.starts_with(krate) {
                if let Some(tail) = path.strip_prefix(krate).and_then(|t| t.strip_prefix("::")) {
                    if qual.ends_with(&format!("::{tail}")) {
                        out.push(i);
                    }
                }
            }
        }
        out
    };

    // Adjacency + reverse chain bookkeeping for reachability messages.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        for call in &n.facts.calls {
            for j in resolve(&call.target) {
                if j != i && !edges[i].contains(&j) {
                    edges[i].push(j);
                }
            }
        }
    }

    let mut diags = Vec::new();
    knob_at_construction(&nodes, &edges, &mut diags);
    call_site_rules(&nodes, &resolve, &mut diags);
    diags
}

/// BFS from the entry points; every reachable `env::var` read is flagged.
fn knob_at_construction(nodes: &[Node<'_>], edges: &[Vec<usize>], diags: &mut Vec<Diagnostic>) {
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut seen = vec![false; nodes.len()];
    let mut queue: Vec<usize> = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        if ENTRY_POINTS.contains(&n.facts.name.as_str()) {
            seen[i] = true;
            queue.push(i);
        }
    }
    let mut head = 0usize;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        for &j in &edges[i] {
            if !seen[j] {
                seen[j] = true;
                parent[j] = Some(i);
                queue.push(j);
            }
        }
    }
    for (i, n) in nodes.iter().enumerate() {
        if !seen[i] || scope::classify(n.path) != Strictness::Strict {
            continue;
        }
        for (knob, line) in &n.facts.env_reads {
            // Reconstruct a short entry chain for the message.
            let mut chain = vec![n.facts.name.clone()];
            let mut at = i;
            while let Some(p) = parent[at] {
                chain.push(nodes[p].facts.name.clone());
                at = p;
                if chain.len() >= 4 {
                    break;
                }
            }
            chain.reverse();
            let shown = if knob == "?" { "an env var" } else { knob };
            diags.push(Diagnostic {
                rule: "knob-at-construction",
                path: n.path.to_string(),
                line: *line,
                message: format!(
                    "{shown} is read on a render/serve path (reachable via `{}`) — \
                     registered knobs are resolved once at config construction and \
                     passed down as values, never re-read mid-run",
                    chain.join(" -> ")
                ),
            });
        }
    }
}

/// The depth-1 summary checks at call sites: RNG streams passed into
/// partition-crossing parameters, thread-derived values passed into
/// float-fold-grouping parameters.
fn call_site_rules(
    nodes: &[Node<'_>],
    resolve: &dyn Fn(&str) -> Vec<usize>,
    diags: &mut Vec<Diagnostic>,
) {
    for n in nodes {
        if scope::classify(n.path) != Strictness::Strict {
            continue;
        }
        for call in &n.facts.calls {
            if call.rng_args.is_empty() && call.thread_args.is_empty() {
                continue;
            }
            let is_partition = call.target.ends_with("::run_tasks")
                || call.target.ends_with("::run_indexed")
                || call.target.ends_with("::map_rows");
            for j in resolve(&call.target) {
                let callee = &nodes[j];
                for arg in &call.rng_args {
                    // Methods shift explicit args by one (`self` is param 0).
                    let hits = callee.facts.rng_cross_params.contains(arg)
                        || (call.target.starts_with("M:")
                            && callee.facts.rng_cross_params.contains(&(arg + 1)));
                    if hits {
                        diags.push(Diagnostic {
                            rule: "det-rng-discipline",
                            path: n.path.to_string(),
                            line: call.line,
                            message: format!(
                                "RNG stream passed to `{}`, which draws this parameter \
                                 inside a parallel partition — pass a `fork(tag)` child \
                                 so the callee's tasks cannot share the caller's stream",
                                callee.facts.qual
                            ),
                        });
                    }
                }
                if is_partition || FOLD_EXEMPT.contains(&callee.path) {
                    continue;
                }
                for arg in &call.thread_args {
                    let hits = callee.facts.thread_fold_params.contains(arg)
                        || (call.target.starts_with("M:")
                            && callee.facts.thread_fold_params.contains(&(arg + 1)));
                    if hits {
                        diags.push(Diagnostic {
                            rule: "parallel-float-fold",
                            path: n.path.to_string(),
                            line: call.line,
                            message: format!(
                                "thread-derived value passed to `{}`, which groups a \
                                 float reduction by this parameter — the partial sums \
                                 would reorder with `PATU_THREADS`; reduce through the \
                                 ordered partition APIs",
                                callee.facts.qual
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// The float-fmt chain closure across calls: a binding whose initializer
/// calls a function returning a float-formatted string, later used in a
/// JSON-keyed macro in the same caller.
pub fn float_chain<F: std::borrow::Borrow<FileFacts>>(
    files: &BTreeMap<String, F>,
) -> Vec<Diagnostic> {
    let mut float_fns: Vec<&str> = Vec::new();
    for facts in files.values() {
        for f in &facts.borrow().fns {
            if f.returns_float_string && !f.in_test {
                float_fns.push(f.name.as_str());
            }
        }
    }
    let mut diags = Vec::new();
    if float_fns.is_empty() {
        return diags;
    }
    for (path, facts) in files {
        if scope::classify(path) != Strictness::Strict {
            continue;
        }
        for f in &facts.borrow().fns {
            // Bindings in this function whose value came from a
            // float-string-returning call.
            let mut tainted_binds: Vec<&str> = Vec::new();
            for call in &f.calls {
                if call.binds.is_empty() {
                    continue;
                }
                let callee_name = call
                    .target
                    .trim_start_matches("M:")
                    .trim_start_matches("P:")
                    .rsplit("::")
                    .next()
                    .unwrap_or("");
                if float_fns.contains(&callee_name) {
                    tainted_binds.push(call.binds.as_str());
                }
            }
            if tainted_binds.is_empty() {
                continue;
            }
            for (line, args) in &f.json_sinks {
                for arg in args {
                    if tainted_binds.contains(&arg.as_str()) {
                        diags.push(Diagnostic {
                            rule: "float-fmt",
                            path: path.clone(),
                            line: *line,
                            message: format!(
                                "`{arg}` holds a float-formatted string (from a callee's \
                                 `format!(\"{{:.N}}\")`) and reaches a JSON literal here — \
                                 route the number through `patu_obs::json::num`/`num_fixed`"
                            ),
                        });
                    }
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::resolve;
    use crate::rules;

    fn facts_for(path: &str, src: &str) -> (String, FileFacts) {
        let lexed = lexer::lex(src);
        // Mirror the workspace convention: `crates/<dir>` holds `patu-<dir>`.
        let mut crates = BTreeMap::new();
        if let Some(dir) = path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
        {
            crates.insert(format!("crates/{dir}"), format!("patu_{dir}"));
        }
        let idx = resolve::index_file(path, &lexed.toks, &crates);
        let mask = rules::test_mask(&lexed.toks);
        let mut diags = Vec::new();
        let fns = idx
            .fns
            .iter()
            .map(|f| {
                let mut facts =
                    crate::dataflow::analyze_fn(path, &idx, f, &lexed.toks, false, &mut diags);
                facts.in_test = mask.get(f.decl).copied().unwrap_or(false);
                facts
            })
            .collect();
        (
            path.to_string(),
            FileFacts {
                fns,
                emits: Vec::new(),
                registry: Vec::new(),
            },
        )
    }

    #[test]
    fn env_read_reachable_from_entry_is_flagged() {
        let mut files = BTreeMap::new();
        let (p1, f1) = facts_for(
            "crates/sim/src/render.rs",
            "use crate::knobs::resolve_knob;\n\
             pub fn render_frame(n: u32) -> u32 { helper(n) }\n\
             fn helper(n: u32) -> u32 { resolve_knob().unwrap_or(n) }\n",
        );
        let (p2, f2) = facts_for(
            "crates/sim/src/knobs.rs",
            "pub fn resolve_knob() -> Option<u32> {\n\
                 std::env::var(\"PATU_DEMO\").ok().and_then(|v| v.parse().ok())\n\
             }\n",
        );
        files.insert(p1, f1);
        files.insert(p2, f2);
        let diags = check(&files);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "knob-at-construction");
        assert_eq!(diags[0].path, "crates/sim/src/knobs.rs");
        assert!(diags[0].message.contains("render_frame"));
    }

    #[test]
    fn constructor_only_env_read_is_clean() {
        let mut files = BTreeMap::new();
        let (p1, f1) = facts_for(
            "crates/sim/src/config.rs",
            "pub fn from_env() -> u32 {\n\
                 std::env::var(\"PATU_DEMO\").ok().and_then(|v| v.parse().ok()).unwrap_or(1)\n\
             }\n\
             pub fn render_frame(n: u32) -> u32 { n }\n",
        );
        files.insert(p1, f1);
        assert!(check(&files).is_empty());
    }

    #[test]
    fn cross_crate_rng_summary_flags_the_call_site() {
        let mut files = BTreeMap::new();
        let (p1, f1) = facts_for(
            "crates/sim/src/jobs.rs",
            "use patu_gmath::DetRng;\nuse patu_fault::inject_all;\n\
             pub fn drive(seed: u64) -> u64 {\n\
                 let mut rng = DetRng::new(seed);\n\
                 inject_all(&mut rng)\n\
             }\n",
        );
        let (p2, f2) = facts_for(
            "crates/fault/src/lib.rs",
            "use patu_sim::parallel;\nuse patu_gmath::DetRng;\n\
             pub fn inject_all(rng: &mut DetRng) -> u64 {\n\
                 parallel::run_indexed(4, 8, |i| rng.next_u64() ^ i as u64).iter().count() as u64\n\
             }\n",
        );
        files.insert(p1, f1);
        files.insert(p2, f2);
        let diags = check(&files);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "det-rng-discipline");
        assert_eq!(diags[0].path, "crates/sim/src/jobs.rs");
    }

    #[test]
    fn cross_crate_fold_summary_flags_the_call_site() {
        let mut files = BTreeMap::new();
        let (p1, f1) = facts_for(
            "crates/sim/src/stats.rs",
            "use patu_sim::parallel;\nuse patu_stats::grouped_mean;\n\
             pub fn summarize(explicit: Option<usize>, vals: &[f64]) -> f64 {\n\
                 let t = parallel::thread_count(explicit);\n\
                 grouped_mean(t, vals)\n\
             }\n",
        );
        let (p2, f2) = facts_for(
            "crates/stats/src/lib.rs",
            "pub fn grouped_mean(groups: usize, vals: &[f64]) -> f64 {\n\
                 let mut partials = vec![0.0f64; groups];\n\
                 for (i, v) in vals.iter().enumerate() { partials[i % groups] += v; }\n\
                 partials.iter().sum::<f64>() / vals.len() as f64\n\
             }\n",
        );
        files.insert(p1, f1);
        files.insert(p2, f2);
        let diags = check(&files);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "parallel-float-fold");
        assert_eq!(diags[0].path, "crates/sim/src/stats.rs");
    }

    #[test]
    fn test_functions_never_resolve_as_targets() {
        let mut files = BTreeMap::new();
        let (p1, f1) = facts_for(
            "crates/serve/src/server.rs",
            "pub fn run_session(n: u32) -> u32 { govern(n) }\n\
             fn govern(n: u32) -> u32 { n }\n\
             #[cfg(test)]\nmod tests {\n\
                 fn govern(n: u32) -> u32 { std::env::var(\"X\").map(|_| n).unwrap_or(n) }\n\
             }\n",
        );
        files.insert(p1, f1);
        assert!(check(&files).is_empty());
    }

    #[test]
    fn float_chain_crosses_function_boundaries() {
        let mut files = BTreeMap::new();
        let (p1, f1) = facts_for(
            "crates/obs/src/report.rs",
            "fn pct(x: f64) -> String { format!(\"{x:.1}%\") }\n\
             pub fn render(x: f64) -> String {\n\
                 let shown = pct(x);\n\
                 format!(\"{{\\\"pct\\\": \\\"{}\\\"}}\", shown)\n\
             }\n",
        );
        files.insert(p1, f1);
        let diags = float_chain(&files);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "float-fmt");
    }
}
