//! The `patu-lint` command: walk the workspace, print diagnostics, exit
//! nonzero when invariants are violated.
//!
//! ```text
//! cargo run -p patu-lint --release -- [--format human|json] [--root <dir>]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: patu-lint [--format human|json] [--root <dir>] [--rules]\n\
                     \n\
                     Statically checks the PATU workspace invariants:\n\
                     determinism (wall-clock, thread-spawn, hash-order, env-var),\n\
                     error hygiene (panic-path), telemetry/JSON hygiene (float-fmt),\n\
                     memory safety (unsafe-code) and the offline guarantee (extern-dep).";

enum Format {
    Human,
    Json,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("patu-lint: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    return fail(&format!("--format expects human|json, got {other:?}"));
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return fail("--root expects a directory"),
            },
            "--rules" => {
                for rule in patu_lint::rules::RULES {
                    println!("{:<12} {}", rule.id, rule.invariant);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let diags = match patu_lint::run(&root) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("patu-lint: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Json => print!("{}", patu_lint::to_json(&diags)),
        Format::Human => {
            for d in &diags {
                println!("{}", d.human());
            }
            if diags.is_empty() {
                println!("patu-lint: workspace clean");
            } else {
                println!("patu-lint: {} violation(s)", diags.len());
            }
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
