//! The `patu-lint` command: walk the workspace, print diagnostics, exit
//! nonzero when invariants are violated.
//!
//! ```text
//! cargo run -p patu-lint --release -- [--format human|json|sarif]
//!     [--root <dir>] [--incremental] [--debt] [--fix [--check] [--scaffold]]
//!     [--check-sarif <file>] [--rules]
//! ```
//!
//! Exit codes: 0 clean, 1 violations (or `--fix --check` pending changes),
//! 2 usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: patu-lint [--format human|json|sarif] [--root <dir>] [--rules]\n\
                     \x20                [--incremental] [--debt] [--fix] [--check] [--scaffold]\n\
                     \x20                [--check-sarif <file>]\n\
                     \n\
                     Statically checks the PATU workspace invariants:\n\
                     determinism (wall-clock, thread-spawn, hash-order, env-var,\n\
                     det-rng-discipline, parallel-float-fold, knob-at-construction),\n\
                     error hygiene (panic-path), telemetry/JSON hygiene (float-fmt,\n\
                     schema-sync), memory safety (unsafe-code) and the offline\n\
                     guarantee (extern-dep).\n\
                     \n\
                     --incremental   reuse the per-file cache under target/patu-lint/\n\
                     --debt          also report unused allow(...) pragmas\n\
                     --fix           apply mechanical rewrites (hash-order, float-fmt)\n\
                     --check         with --fix: dry-run, exit 1 if changes pending\n\
                     --scaffold      with --fix: insert TODO pragmas for the rest\n\
                     --check-sarif   validate a SARIF file's structure and exit";

enum Format {
    Human,
    Json,
    Sarif,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("patu-lint: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut opts = patu_lint::Options::default();
    let mut fix = false;
    let mut check = false;
    let mut scaffold = false;
    let mut check_sarif: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    return fail(&format!("--format expects human|json|sarif, got {other:?}"));
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return fail("--root expects a directory"),
            },
            "--incremental" => opts.incremental = true,
            "--debt" => opts.debt = true,
            "--fix" => fix = true,
            "--check" => check = true,
            "--scaffold" => scaffold = true,
            "--check-sarif" => match args.next() {
                Some(file) => check_sarif = Some(PathBuf::from(file)),
                None => return fail("--check-sarif expects a file"),
            },
            "--rules" => {
                for rule in patu_lint::rules::RULES {
                    println!("{:<20} {}", rule.id, rule.invariant);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }
    if check && !fix {
        return fail("--check only applies together with --fix");
    }
    if scaffold && !fix {
        return fail("--scaffold only applies together with --fix");
    }
    if let Some(file) = check_sarif {
        return match std::fs::read_to_string(&file) {
            Ok(text) => match patu_lint::sarif::validate(&text) {
                Ok(()) => {
                    println!(
                        "patu-lint: {} is structurally valid SARIF 2.1.0",
                        file.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("patu-lint: {}: invalid SARIF: {e}", file.display());
                    ExitCode::from(2)
                }
            },
            Err(e) => {
                eprintln!("patu-lint: reading {}: {e}", file.display());
                ExitCode::from(2)
            }
        };
    }
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let outcome = match patu_lint::run_with(&root, &opts) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("patu-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut diags = outcome.diags;

    if fix {
        let report = match patu_lint::fix::run_fix(&root, &diags, scaffold, check) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("patu-lint: {e}");
                return ExitCode::from(2);
            }
        };
        if check {
            if report.changed_anything() {
                for (path, edits) in &report.changed {
                    eprintln!("patu-lint: --fix would change {path} ({edits} edit(s))");
                }
                return ExitCode::FAILURE;
            }
            println!("patu-lint: --fix has nothing to change");
            return ExitCode::SUCCESS;
        }
        for (path, edits) in &report.changed {
            println!("patu-lint: fixed {path} ({edits} edit(s))");
        }
        for d in &report.skipped {
            eprintln!("patu-lint: not auto-fixable: {}", d.human());
        }
        // Re-lint so the exit code and output reflect the fixed tree.
        diags = match patu_lint::run_with(&root, &opts) {
            Ok(outcome) => outcome.diags,
            Err(e) => {
                eprintln!("patu-lint: {e}");
                return ExitCode::from(2);
            }
        };
    }

    match format {
        Format::Json => print!("{}", patu_lint::to_json(&diags)),
        Format::Sarif => print!("{}", patu_lint::sarif::to_sarif(&diags)),
        Format::Human => {
            for d in &diags {
                println!("{}", d.human());
            }
            if diags.is_empty() {
                if opts.incremental {
                    println!(
                        "patu-lint: workspace clean ({} files, {} cached)",
                        outcome.files, outcome.reused
                    );
                } else {
                    println!("patu-lint: workspace clean");
                }
            } else {
                println!("patu-lint: {} violation(s)", diags.len());
            }
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
