//! The incremental-lint cache under `target/patu-lint/`.
//!
//! A file's *entire* per-file analysis — raw intraprocedural diagnostics,
//! pragma suppression table, and the facts the global pass consumes — is a
//! pure function of its bytes, so it is cached by content hash (FNV-1a,
//! hand-rolled: the linter stays zero-dep). A warm run re-hashes every
//! file but skips lexing, item parsing, and dataflow for unchanged ones.
//! The *global* pass (call graph, knob reachability, schema sync) is always
//! recomputed from the cached facts — a change to any file can invalidate
//! interprocedural conclusions about every file in its dependency closure,
//! and the facts make recomputation cheap, so invalidation is handled by
//! construction rather than by tracking the closure explicitly.
//!
//! The cache is one JSON document, parsed back with the same hand-rolled
//! parser the SARIF validator uses. Any version or workspace-fingerprint
//! mismatch drops the whole cache — correctness over cleverness. The
//! fingerprint folds in every file *path* (not contents), so adding or
//! deleting files invalidates implicitly while unchanged files still hit.

use crate::dataflow::{CallFact, FileFacts, FnFacts};
use crate::diag::Diagnostic;
use crate::rules::{FileAnalysis, Suppression};
use crate::sarif::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Bumped whenever rule or fact semantics change; stale caches self-evict.
pub const LINT_VERSION: u32 = 2;

/// FNV-1a over bytes — stable across platforms and runs, no dependencies.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the workspace *shape*: the ordered relative paths.
#[must_use]
pub fn workspace_fingerprint(files: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for f in files {
        h ^= fnv1a(f.as_bytes());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The loaded cache: path → (content hash, analysis at that hash).
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, (u64, FileAnalysis)>,
    /// Whether any entry changed since load (skip the write when clean).
    dirty: bool,
}

impl Cache {
    /// Loads the cache for `root`, or an empty one when missing, stale, or
    /// from a different workspace shape. Never errors: an unreadable cache
    /// is just a cold cache.
    #[must_use]
    pub fn load(root: &Path, fingerprint: u64) -> Self {
        let mut cache = Self::default();
        let Ok(text) = std::fs::read_to_string(cache_path(root)) else {
            return cache;
        };
        let Ok(doc) = sarif::parse(&text) else {
            return cache;
        };
        if read_u64(doc.get("version")) != Some(u64::from(LINT_VERSION))
            || doc.get("fingerprint").and_then(Json::str)
                != Some(format!("{fingerprint:016x}").as_str())
        {
            return cache;
        }
        for entry in doc.get("files").map(Json::items).unwrap_or(&[]) {
            let (Some(path), Some(hash)) = (
                entry.get("path").and_then(Json::str),
                entry
                    .get("hash")
                    .and_then(Json::str)
                    .and_then(|h| u64::from_str_radix(h, 16).ok()),
            ) else {
                continue;
            };
            let Some(analysis) = decode_analysis(path, entry) else {
                continue;
            };
            cache.entries.insert(path.to_string(), (hash, analysis));
        }
        cache
    }

    /// Returns the cached analysis when `hash` matches the stored entry.
    #[must_use]
    pub fn get(&self, path: &str, hash: u64) -> Option<&FileAnalysis> {
        self.entries
            .get(path)
            .filter(|(h, _)| *h == hash)
            .map(|(_, a)| a)
    }

    /// Records a fresh per-file analysis.
    pub fn put(&mut self, path: &str, hash: u64, analysis: FileAnalysis) {
        self.dirty = true;
        self.entries.insert(path.to_string(), (hash, analysis));
    }

    /// Drops entries for paths no longer in the workspace.
    pub fn retain_paths(&mut self, live: &[String]) {
        let before = self.entries.len();
        self.entries.retain(|p, _| live.contains(p));
        if self.entries.len() != before {
            self.dirty = true;
        }
    }

    /// Persists the cache when anything changed since load.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory or file cannot
    /// be written. Callers treat this as a warning, not a lint failure.
    pub fn store(&self, root: &Path, fingerprint: u64) -> std::io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        let path = cache_path(root);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"version\": {LINT_VERSION}, \"fingerprint\": \"{fingerprint:016x}\", \"files\": ["
        );
        for (i, (p, (hash, analysis))) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"path\": {}, \"hash\": \"{hash:016x}\", ",
                jstr(p)
            );
            encode_analysis(&mut out, analysis);
            out.push('}');
        }
        out.push_str("\n]}\n");
        std::fs::write(path, out)
    }
}

fn cache_path(root: &Path) -> std::path::PathBuf {
    root.join("target").join("patu-lint").join("cache.json")
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// Every field with a default value (empty list/string, false) is omitted
// on encode — the decoder treats a missing key as the default. Most calls
// carry no taint and most functions no summaries, so this roughly halves
// the document and with it the warm-run parse time.
fn encode_analysis(out: &mut String, a: &FileAnalysis) {
    out.push_str("\"raw\": [");
    for (i, d) in a.raw.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"r\": {}, \"l\": {}, \"m\": {}}}",
            jstr(d.rule),
            d.line,
            jstr(&d.message)
        );
    }
    out.push_str("], \"sup\": [");
    for (i, s) in a.suppressions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"r\": {}, \"t\": {}, \"p\": {}}}",
            jstr(&s.rule),
            s.target,
            s.pragma_line
        );
    }
    out.push_str("], \"fns\": [");
    for (i, f) in a.facts.fns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"q\": {}, \"n\": {}, \"l\": {}",
            jstr(&f.qual),
            jstr(&f.name),
            f.line,
        );
        if f.in_test {
            out.push_str(", \"it\": true");
        }
        if f.returns_float_string {
            out.push_str(", \"rfs\": true");
        }
        if !f.rng_cross_params.is_empty() {
            let _ = write!(out, ", \"rng\": {:?}", f.rng_cross_params);
        }
        if !f.thread_fold_params.is_empty() {
            let _ = write!(out, ", \"tfp\": {:?}", f.thread_fold_params);
        }
        if !f.env_reads.is_empty() {
            out.push_str(", \"env\": [");
            encode_pairs(out, &f.env_reads);
            out.push(']');
        }
        if !f.json_sinks.is_empty() {
            out.push_str(", \"sinks\": [");
            for (j, (line, args)) in f.json_sinks.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{line}, [");
                for (k, a) in args.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&jstr(a));
                }
                out.push_str("]]");
            }
            out.push(']');
        }
        if !f.calls.is_empty() {
            out.push_str(", \"calls\": [");
            for (j, c) in f.calls.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"t\": {}, \"l\": {}", jstr(&c.target), c.line);
                if !c.rng_args.is_empty() {
                    let _ = write!(out, ", \"r\": {:?}", c.rng_args);
                }
                if !c.thread_args.is_empty() {
                    let _ = write!(out, ", \"th\": {:?}", c.thread_args);
                }
                if !c.binds.is_empty() {
                    let _ = write!(out, ", \"b\": {}", jstr(&c.binds));
                }
                if c.in_partition {
                    out.push_str(", \"p\": true");
                }
                out.push('}');
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push(']');
    if !a.facts.emits.is_empty() {
        out.push_str(", \"emits\": [");
        encode_pairs(out, &a.facts.emits);
        out.push(']');
    }
    if !a.facts.registry.is_empty() {
        out.push_str(", \"reg\": [");
        encode_pairs(out, &a.facts.registry);
        out.push(']');
    }
}

fn encode_pairs(out: &mut String, pairs: &[(String, u32)]) {
    for (i, (name, line)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{}, {line}]", jstr(name));
    }
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn read_u64(v: Option<&Json>) -> Option<u64> {
    match v {
        Some(Json::Num(n)) if *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

fn read_u32(v: Option<&Json>) -> Option<u32> {
    read_u64(v).and_then(|n| u32::try_from(n).ok())
}

fn read_usize_list(v: Option<&Json>) -> Vec<usize> {
    v.map(Json::items)
        .unwrap_or(&[])
        .iter()
        .filter_map(|n| read_u64(Some(n)).and_then(|n| usize::try_from(n).ok()))
        .collect()
}

fn read_bool(v: Option<&Json>) -> bool {
    matches!(v, Some(Json::Bool(true)))
}

fn read_pairs(v: Option<&Json>) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for item in v.map(Json::items).unwrap_or(&[]) {
        let pair = item.items();
        if let (Some(name), Some(line)) = (pair.first().and_then(Json::str), read_u32(pair.get(1)))
        {
            out.push((name.to_string(), line));
        }
    }
    out
}

fn decode_analysis(path: &str, entry: &Json) -> Option<FileAnalysis> {
    let mut raw = Vec::new();
    for d in entry.get("raw").map(Json::items).unwrap_or(&[]) {
        let rule_name = d.get("r").and_then(Json::str)?;
        // Diagnostic rule ids are &'static; map back through the table.
        let rule = crate::rules::RULES
            .iter()
            .map(|r| r.id)
            .chain(["bad-pragma"])
            .find(|id| *id == rule_name)?;
        raw.push(Diagnostic {
            rule,
            path: path.to_string(),
            line: read_u32(d.get("l"))?,
            message: d.get("m").and_then(Json::str)?.to_string(),
        });
    }
    let mut suppressions = Vec::new();
    for s in entry.get("sup").map(Json::items).unwrap_or(&[]) {
        suppressions.push(Suppression {
            rule: s.get("r").and_then(Json::str)?.to_string(),
            target: read_u32(s.get("t"))?,
            pragma_line: read_u32(s.get("p"))?,
        });
    }
    let mut fns = Vec::new();
    for f in entry.get("fns").map(Json::items).unwrap_or(&[]) {
        let mut json_sinks = Vec::new();
        for sink in f.get("sinks").map(Json::items).unwrap_or(&[]) {
            let pair = sink.items();
            let line = read_u32(pair.first())?;
            let args = pair
                .get(1)
                .map(Json::items)
                .unwrap_or(&[])
                .iter()
                .filter_map(|a| a.str().map(str::to_string))
                .collect();
            json_sinks.push((line, args));
        }
        let mut calls = Vec::new();
        for c in f.get("calls").map(Json::items).unwrap_or(&[]) {
            calls.push(CallFact {
                target: c.get("t").and_then(Json::str)?.to_string(),
                line: read_u32(c.get("l"))?,
                rng_args: read_usize_list(c.get("r")),
                thread_args: read_usize_list(c.get("th")),
                binds: c.get("b").and_then(Json::str).unwrap_or("").to_string(),
                in_partition: read_bool(c.get("p")),
            });
        }
        fns.push(FnFacts {
            qual: f.get("q").and_then(Json::str)?.to_string(),
            name: f.get("n").and_then(Json::str)?.to_string(),
            line: read_u32(f.get("l"))?,
            calls,
            env_reads: read_pairs(f.get("env")),
            rng_cross_params: read_usize_list(f.get("rng")),
            thread_fold_params: read_usize_list(f.get("tfp")),
            returns_float_string: read_bool(f.get("rfs")),
            json_sinks,
            in_test: read_bool(f.get("it")),
        });
    }
    Some(FileAnalysis {
        raw,
        suppressions,
        facts: FileFacts {
            fns,
            emits: read_pairs(entry.get("emits")),
            registry: read_pairs(entry.get("reg")),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"patu"), fnv1a(b"patu"));
    }

    fn sample_analysis(path: &str) -> FileAnalysis {
        crate::rules::analyze_source(
            path,
            "use patu_gmath::DetRng;\n\
             // patu-lint: allow(panic-path) — provably non-empty\n\
             pub fn pick(v: &[u32], seed: u64) -> u32 {\n\
                 let mut rng = DetRng::new(seed);\n\
                 let i = rng.range(v.len() as u64) as usize;\n\
                 v.first().copied().expect(\"non-empty\")\n\
             }\n\
             fn pct(x: f64) -> String { format!(\"{x:.1}%\") }\n",
            &BTreeMap::new(),
        )
    }

    #[test]
    fn roundtrip_through_disk_preserves_analysis() {
        let dir = std::env::temp_dir().join(format!("patu-lint-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = "crates/fake/src/engine.rs";
        let analysis = sample_analysis(path);
        let files = vec![path.to_string()];
        let fp = workspace_fingerprint(&files);

        let mut cache = Cache::default();
        cache.put(path, 7, analysis);
        cache.store(&dir, fp).expect("store");

        let loaded = Cache::load(&dir, fp);
        let hit = loaded.get(path, 7).expect("hash hit");
        let fresh = sample_analysis(path);
        assert_eq!(hit.raw.len(), fresh.raw.len());
        assert_eq!(hit.suppressions, fresh.suppressions);
        assert_eq!(hit.facts.fns.len(), fresh.facts.fns.len());
        for (a, b) in hit.facts.fns.iter().zip(&fresh.facts.fns) {
            assert_eq!(a.qual, b.qual);
            assert_eq!(a.returns_float_string, b.returns_float_string);
            assert_eq!(a.calls.len(), b.calls.len());
            for (ca, cb) in a.calls.iter().zip(&b.calls) {
                assert_eq!(ca.target, cb.target);
                assert_eq!(ca.rng_args, cb.rng_args);
                assert_eq!(ca.binds, cb.binds);
            }
        }
        assert!(loaded.get(path, 8).is_none(), "stale hash must miss");

        // A different workspace shape or lint version drops everything.
        let other = Cache::load(&dir, fp ^ 1);
        assert!(other.get(path, 7).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retain_drops_deleted_paths() {
        let mut cache = Cache::default();
        cache.put("a.rs", 1, FileAnalysis::default());
        cache.put("gone.rs", 2, FileAnalysis::default());
        cache.retain_paths(&["a.rs".to_string()]);
        assert!(cache.get("a.rs", 1).is_some());
        assert!(cache.get("gone.rs", 2).is_none());
    }
}
