//! Flow-sensitive intraprocedural dataflow over function bodies, plus the
//! per-function summaries the call graph propagates across files.
//!
//! Two taint lattices ride the same linear pass:
//!
//! * **RNG streams** — every local is classified by origin
//!   (`DetRng::new`, `.fork(..)` child, `.clone()`/copy of another stream,
//!   or a `DetRng` parameter). Inside a *partition region* (the closure
//!   arguments of `patu_sim::parallel::run_tasks`/`run_indexed` and
//!   `quality::par::map_rows`, plus statements building `parallel::Task`
//!   vectors) only region-local streams and fresh `fork` children may be
//!   drawn; drawing, cloning, or passing a stream captured from outside the
//!   region is a `det-rng-discipline` violation, as is re-seeding
//!   `DetRng::new` from a drawn value anywhere.
//!
//! * **Float accumulators** — values derived from
//!   `parallel::thread_count`/`available_parallelism` are *thread-tainted*.
//!   A float collection sized or indexed by a thread-tainted value, or a
//!   `chunks(thread_tainted)` grouping, that feeds `sum()`/`fold`/
//!   `product()` is a `parallel-float-fold` violation: the reduction order
//!   depends on `PATU_THREADS`. The ordered-merge results returned by the
//!   partition APIs themselves are untainted — that is the sanctioned path.
//!
//! The same pass extends `float-fmt` across `format!`/`write!`/
//! `format_args!` chains: a string formatted with a float spec that later
//! lands inside a JSON-keyed literal is flagged at the sink.
//!
//! Both lattices are deliberately shallow (assignments are processed in
//! source order, last-write-wins, no branch joins) and the summaries are
//! depth-1: taint that crosses more than one call boundary is caught at the
//! first boundary it crosses. That is enough for every pattern the
//! workspace actually uses, and it keeps a full-workspace run linear.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::resolve::{FileIndex, FnItem};
use std::collections::BTreeMap;

/// `DetRng` methods that advance the stream.
pub const DRAW_METHODS: &[&str] = &[
    "next_u64",
    "next_u32",
    "next_f64",
    "next_f32",
    "range",
    "range_between",
    "chance",
];

/// Method names too generic to resolve across the workspace; calls through
/// them never create call-graph edges (documented under-approximation).
pub const COMMON_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_str",
    "borrow",
    "borrow_mut",
    "bytes",
    "ceil",
    "chars",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "end",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "fork",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_finite",
    "is_some",
    "is_none",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "map",
    "map_err",
    "map_or",
    "max",
    "min",
    "ne",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "parse",
    "partial_cmp",
    "pixels",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "remove",
    "resize",
    "retain",
    "rev",
    "round",
    "skip",
    "sort",
    "sort_unstable",
    "split",
    "sqrt",
    "start",
    "starts_with",
    "sum",
    "take",
    "then",
    "then_some",
    "to_bits",
    "to_owned",
    "to_string",
    "trim",
    "try_from",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "write",
    "zip",
];

/// Rust keywords and enum constructors that look like calls but are not.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "as", "in", "move", "else", "let", "fn",
    "impl", "pub", "use", "mod", "where", "ref", "mut", "box", "await", "dyn", "type", "const",
    "static", "struct", "enum", "trait", "crate", "self", "Self", "super", "break", "continue",
    "true", "false", "Some", "None", "Ok", "Err", "Box", "Vec", "String",
];

/// How an RNG local came to exist.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RngOrigin {
    /// `DetRng::new(..)` or a `.fork(..)` child: an independent stream.
    Fresh,
    /// `.clone()` or a plain copy of another stream: shares its sequence.
    Shared,
    /// A `DetRng` function parameter (index into the signature).
    Param(usize),
}

#[derive(Debug, Clone)]
struct RngVar {
    origin: RngOrigin,
    decl: usize,
}

/// What a thread-taint mark means.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Taint {
    /// Provably derived from `thread_count`/`available_parallelism`.
    Thread,
    /// Derived from a function parameter (index): a *conditional* taint
    /// that becomes real when a caller passes a thread-derived argument.
    Param(usize),
}

/// One call site, as the call graph sees it.
#[derive(Debug, Clone)]
pub struct CallFact {
    /// `P:<absolute::path>` for path/bare calls, `M:<name>` for methods.
    pub target: String,
    /// 1-based line.
    pub line: u32,
    /// Argument positions holding a non-fresh RNG identifier.
    pub rng_args: Vec<usize>,
    /// Argument positions holding a thread-tainted identifier.
    pub thread_args: Vec<usize>,
    /// The `let` binding receiving the call's result, when there is one.
    pub binds: String,
    /// Whether the call site sits inside a partition region.
    pub in_partition: bool,
}

/// Facts about one function, serialized into the incremental cache.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Fully qualified name.
    pub qual: String,
    /// Bare name (for method-call matching).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Call sites in body order.
    pub calls: Vec<CallFact>,
    /// `std::env::var` reads: (variable name or `?`, line).
    pub env_reads: Vec<(String, u32)>,
    /// Parameter indices of `DetRng` params used inside a partition region.
    pub rng_cross_params: Vec<usize>,
    /// Parameter indices that group a float reduction when thread-tainted.
    pub thread_fold_params: Vec<usize>,
    /// Whether the function returns a float-formatted string.
    pub returns_float_string: bool,
    /// JSON-keyed macro literals: (line, argument identifiers).
    pub json_sinks: Vec<(u32, Vec<String>)>,
    /// Whether the function lives inside a `#[cfg(test)]` region; test
    /// functions never act as call-graph resolution targets.
    pub in_test: bool,
}

/// Everything the global pass needs from one file, serialized into the
/// incremental cache alongside the file's raw diagnostics.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Per-function facts in declaration order.
    pub fns: Vec<FnFacts>,
    /// JSONL `"type"` strings emitted from non-test code: (type, line).
    pub emits: Vec<(String, u32)>,
    /// `patu_obs::schema::LINE_TYPES` registry entries found here.
    pub registry: Vec<(String, u32)>,
}

/// Whether a format-literal (raw source, quotes included) contains a float
/// format spec (`{:.N}`, `{v:.3}`, `{x:e}`) — JSON key or not.
pub fn float_spec(text: &str) -> bool {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if i + 1 < bytes.len() && bytes[i + 1] == b'{' {
                i += 2;
                continue;
            }
            if let Some(off) = bytes[i + 1..].iter().position(|&b| b == b'}') {
                let inner = &text[i + 1..i + 1 + off];
                if !inner.contains(['"', '\\', ' ', ',', '{']) {
                    if let Some((_, spec)) = inner.split_once(':') {
                        if spec.contains('.') || spec.ends_with('e') || spec.ends_with('E') {
                            return true;
                        }
                    }
                    i += off + 2;
                    continue;
                }
            }
        }
        i += 1;
    }
    false
}

fn punct(toks: &[Tok], i: usize, ch: char) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text.starts_with(ch))
}

fn ident(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i) {
        Some(t) if t.kind == TokKind::Ident => Some(&t.text),
        _ => None,
    }
}

fn is_path_sep(toks: &[Tok], i: usize) -> bool {
    punct(toks, i, ':') && punct(toks, i + 1, ':')
}

/// If the identifier at `i` heads a call (possibly through a `::<..>`
/// turbofish), returns the index of the opening `(`.
fn call_paren(toks: &[Tok], i: usize) -> Option<usize> {
    if punct(toks, i + 1, '(') {
        return Some(i + 1);
    }
    if is_path_sep(toks, i + 1) && punct(toks, i + 3, '<') {
        let mut depth = 0usize;
        let mut j = i + 3;
        while j < toks.len() {
            if punct(toks, j, '<') {
                depth += 1;
            } else if punct(toks, j, '>') && !punct(toks, j - 1, '-') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if punct(toks, j + 1, '(') {
            return Some(j + 1);
        }
    }
    None
}

/// Index just past the `)` matching the `(` at `open`.
fn close_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if punct(toks, i, '(') {
            depth += 1;
        } else if punct(toks, i, ')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    i
}

/// Whether an absolute call path is one of the ordered-merge partition
/// APIs whose closure arguments form a partition region.
fn is_partition_api(path: &str) -> bool {
    path.ends_with("parallel::run_tasks")
        || path.ends_with("parallel::run_indexed")
        || path.ends_with("::run_tasks")
        || path.ends_with("::run_indexed")
        || path.ends_with("::map_rows")
}

/// Walks a path call backwards from the final segment at `i`, returning the
/// segment list (`["parallel", "run_indexed"]`).
fn path_segments(toks: &[Tok], i: usize) -> (Vec<String>, usize) {
    let mut segs = vec![toks[i].text.clone()];
    let mut first = i;
    let mut j = i;
    while j >= 2 && punct(toks, j - 1, ':') && punct(toks, j - 2, ':') {
        if j >= 3 {
            if let Some(prev) = ident(toks, j - 3) {
                segs.push(prev.to_string());
                j -= 3;
                first = j;
                continue;
            }
        }
        break;
    }
    segs.reverse();
    (segs, first)
}

/// Top-level closure regions inside a call's argument parens, plus region
/// extents for statements that build `parallel::Task` vectors.
fn closure_regions(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut j = open;
    while j < close {
        if punct(toks, j, '(') || punct(toks, j, '[') || punct(toks, j, '{') {
            depth += 1;
        } else if punct(toks, j, ')') || punct(toks, j, ']') || punct(toks, j, '}') {
            depth = depth.saturating_sub(1);
        } else if depth == 1 && punct(toks, j, '|') {
            let starts_arg = punct(toks, j - 1, '(')
                || punct(toks, j - 1, ',')
                || ident(toks, j - 1) == Some("move");
            if starts_arg {
                // Params run to the next `|` (or immediately for `||`).
                let mut k = j + 1;
                while k < close && !punct(toks, k, '|') {
                    k += 1;
                }
                k += 1;
                let end = if punct(toks, k, '{') {
                    let mut d = 0usize;
                    let mut m = k;
                    while m < toks.len() {
                        if punct(toks, m, '{') {
                            d += 1;
                        } else if punct(toks, m, '}') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        m += 1;
                    }
                    m
                } else {
                    // Expression body: to the `,`/`)` closing this arg.
                    let mut d = 0usize;
                    let mut m = k;
                    while m < close {
                        if punct(toks, m, '(') || punct(toks, m, '[') || punct(toks, m, '{') {
                            d += 1;
                        } else if punct(toks, m, ')') || punct(toks, m, ']') || punct(toks, m, '}')
                        {
                            if d == 0 {
                                break;
                            }
                            d -= 1;
                        } else if d == 0 && punct(toks, m, ',') {
                            break;
                        }
                        m += 1;
                    }
                    m
                };
                out.push((j, end));
                j = end;
                continue;
            }
        }
        j += 1;
    }
    out
}

/// Statement extent around token `at`: back to the previous `;`/`{`/`}`,
/// forward to the next `;` at balanced depth.
fn statement_extent(toks: &[Tok], body: (usize, usize), at: usize) -> (usize, usize) {
    let mut start = at;
    while start > body.0 + 1 {
        if punct(toks, start - 1, ';') || punct(toks, start - 1, '{') || punct(toks, start - 1, '}')
        {
            break;
        }
        start -= 1;
    }
    let mut depth = 0isize;
    let mut end = at;
    while end < body.1 {
        if punct(toks, end, '(') || punct(toks, end, '[') || punct(toks, end, '{') {
            depth += 1;
        } else if punct(toks, end, ')') || punct(toks, end, ']') || punct(toks, end, '}') {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if depth == 0 && punct(toks, end, ';') {
            break;
        }
        end += 1;
    }
    (start, end)
}

/// Finds every partition region in a function body.
fn partition_regions(toks: &[Tok], idx: &FileIndex, body: (usize, usize)) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = body.0;
    while i <= body.1 {
        if let Some(name) = ident(toks, i) {
            // Partition API calls: closure args become regions.
            if !punct(toks, i - 1, '.') {
                if let Some(open) = call_paren(toks, i) {
                    let (segs, _) = path_segments(toks, i);
                    let resolved = idx.resolve_path(&segs);
                    if is_partition_api(&resolved)
                        && (name == "run_tasks" || name == "run_indexed" || name == "map_rows")
                    {
                        let close = close_paren(toks, open);
                        regions.extend(closure_regions(toks, open, close));
                    }
                }
            }
            // Statements that build `parallel::Task` values: the tasks are
            // executed inside the partition later, so the whole statement
            // is a region for capture purposes.
            if name == "Task" {
                let from_parallel = (punct(toks, i - 1, ':')
                    && punct(toks, i - 2, ':')
                    && ident(toks, i - 3) == Some("parallel"))
                    || idx.uses.get("Task").is_some_and(|p| p.contains("parallel"));
                if from_parallel {
                    let ext = statement_extent(toks, body, i);
                    if !regions.contains(&ext) {
                        regions.push(ext);
                    }
                }
            }
        }
        i += 1;
    }
    regions
}

fn in_region(regions: &[(usize, usize)], i: usize) -> Option<(usize, usize)> {
    regions.iter().copied().find(|&(a, b)| i >= a && i <= b)
}

/// Whether a token run contains a call to an RNG draw method.
fn contains_draw(toks: &[Tok], from: usize, to: usize) -> bool {
    (from..to).any(|k| {
        ident(toks, k).is_some_and(|n| DRAW_METHODS.contains(&n))
            && punct(toks, k - 1, '.')
            && call_paren(toks, k).is_some()
    })
}

/// Analyzes one function body: intraprocedural diagnostics (when `report`
/// is set) plus the facts/summaries for the global pass.
#[allow(clippy::too_many_lines)]
pub fn analyze_fn(
    rel_path: &str,
    idx: &FileIndex,
    item: &FnItem,
    toks: &[Tok],
    report: bool,
    diags: &mut Vec<Diagnostic>,
) -> FnFacts {
    let mut facts = FnFacts {
        qual: item.qual.clone(),
        name: item.name.clone(),
        line: item.line,
        ..FnFacts::default()
    };
    let Some(body) = item.body else {
        return facts;
    };
    let regions = partition_regions(toks, idx, body);

    let mut rng_vars: BTreeMap<String, RngVar> = BTreeMap::new();
    let mut taints: BTreeMap<String, Taint> = BTreeMap::new();
    // Float collections: name -> (thread-taint of the size expr, decl pos).
    let mut float_vecs: BTreeMap<String, (Option<Taint>, usize)> = BTreeMap::new();
    let mut float_strings: BTreeMap<String, u32> = BTreeMap::new();

    for (p, param) in item.params.iter().enumerate() {
        if param.ty.contains("DetRng") && !param.name.is_empty() {
            rng_vars.insert(
                param.name.clone(),
                RngVar {
                    origin: RngOrigin::Param(p),
                    decl: body.0,
                },
            );
        } else if !param.name.is_empty()
            && (param.ty.contains("usize") || param.ty.contains("u32") || param.ty.contains("u64"))
        {
            taints.insert(param.name.clone(), Taint::Param(p));
        }
    }

    let mut push = |rule: &'static str, line: u32, message: String, diags: &mut Vec<Diagnostic>| {
        if report {
            diags.push(Diagnostic {
                rule,
                path: rel_path.to_string(),
                line,
                message,
            });
        }
    };

    let mut i = body.0 + 1;
    while i < body.1 {
        let line = toks.get(i).map_or(0, |t| t.line);

        // ---- let bindings -------------------------------------------------
        if ident(toks, i) == Some("let") {
            let mut n = i + 1;
            if ident(toks, n) == Some("mut") {
                n += 1;
            }
            if let Some(name) = ident(toks, n) {
                // Optional `: Type` annotation before `=`.
                let mut eq = n + 1;
                if punct(toks, eq, ':') && !punct(toks, eq + 1, ':') {
                    while eq < body.1 && !punct(toks, eq, '=') && !punct(toks, eq, ';') {
                        if punct(toks, eq, '<') {
                            let mut d = 0usize;
                            while eq < body.1 {
                                if punct(toks, eq, '<') {
                                    d += 1;
                                } else if punct(toks, eq, '>') && !punct(toks, eq - 1, '-') {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                eq += 1;
                            }
                        }
                        eq += 1;
                    }
                }
                if punct(toks, eq, '=') {
                    let (_, stmt_end) = statement_extent(toks, body, eq + 1);
                    let rhs = (eq + 1, stmt_end);
                    classify_let(
                        rel_path,
                        idx,
                        toks,
                        name,
                        rhs,
                        i,
                        &regions,
                        &mut rng_vars,
                        &mut taints,
                        &mut float_vecs,
                        &mut float_strings,
                        &mut push,
                        diags,
                    );
                }
            }
        }

        // ---- env reads ----------------------------------------------------
        if ident(toks, i) == Some("env")
            && is_path_sep(toks, i + 1)
            && matches!(ident(toks, i + 3), Some("var" | "var_os"))
        {
            let knob = toks
                .get(i + 5)
                .filter(|t| t.kind == TokKind::Str)
                .map(|t| t.text.trim_matches('"').to_string())
                .unwrap_or_else(|| "?".to_string());
            facts.env_reads.push((knob, line));
        }

        // ---- RNG uses -----------------------------------------------------
        if punct(toks, i, '.') {
            if let Some(method) = ident(toks, i + 1) {
                if let Some(recv) =
                    ident(toks, i.checked_sub(1).map_or(0, |k| k)).map(str::to_string)
                {
                    let recv_at = i - 1;
                    if let Some(var) = rng_vars.get(&recv).cloned() {
                        let region = in_region(&regions, recv_at);
                        let captured = region.is_some_and(|(start, _)| var.decl < start);
                        if DRAW_METHODS.contains(&method) && call_paren(toks, i + 1).is_some() {
                            if captured {
                                match var.origin {
                                    RngOrigin::Param(p) => {
                                        if !facts.rng_cross_params.contains(&p) {
                                            facts.rng_cross_params.push(p);
                                        }
                                    }
                                    _ => push(
                                        "det-rng-discipline",
                                        line,
                                        format!(
                                            "`{recv}` is drawn inside a parallel partition but \
                                             lives outside it — every task must draw from its \
                                             own `fork(task_id)` child, or the stream's position \
                                             depends on task interleaving"
                                        ),
                                        diags,
                                    ),
                                }
                            } else if var.origin == RngOrigin::Shared && region.is_some() {
                                push(
                                    "det-rng-discipline",
                                    line,
                                    format!(
                                        "`{recv}` is a cloned/copied RNG stream drawn inside a \
                                         partition — clones replay the parent sequence; use \
                                         `fork(task_id)`"
                                    ),
                                    diags,
                                );
                            }
                        } else if method == "clone" && captured && call_paren(toks, i + 1).is_some()
                        {
                            match var.origin {
                                RngOrigin::Param(p) => {
                                    if !facts.rng_cross_params.contains(&p) {
                                        facts.rng_cross_params.push(p);
                                    }
                                }
                                _ => push(
                                    "det-rng-discipline",
                                    line,
                                    format!(
                                        "`{recv}.clone()` inside a parallel partition — every \
                                         task would replay the same stream; use `fork(task_id)`"
                                    ),
                                    diags,
                                ),
                            }
                        }
                    }
                }
            }
        }

        // ---- calls --------------------------------------------------------
        if let Some(name) = ident(toks, i) {
            let is_macro = punct(toks, i + 1, '!');
            if is_macro {
                analyze_macro(
                    rel_path,
                    toks,
                    i,
                    name,
                    &float_strings,
                    &mut facts,
                    &mut push,
                    diags,
                );
            } else if !NOT_CALLS.contains(&name) {
                if let Some(open) = call_paren(toks, i) {
                    let close = close_paren(toks, open);
                    let method = punct(toks, i.wrapping_sub(1), '.');
                    let target = if method {
                        if COMMON_METHODS.contains(&name) || DRAW_METHODS.contains(&name) {
                            String::new()
                        } else {
                            format!("M:{name}")
                        }
                    } else {
                        let (segs, _) = path_segments(toks, i);
                        format!("P:{}", idx.resolve_path(&segs))
                    };
                    if !target.is_empty() {
                        let region = in_region(&regions, i);
                        let (rng_args, thread_args) = scan_args(
                            rel_path, toks, open, close, region, &rng_vars, &taints, &mut facts,
                            &mut push, diags,
                        );
                        let binds = binding_before(toks, body, i);
                        facts.calls.push(CallFact {
                            target,
                            line,
                            rng_args,
                            thread_args,
                            binds,
                            in_partition: region.is_some(),
                        });
                    } else if in_region(&regions, i).is_some() {
                        // Still police rng args through unresolved calls.
                        scan_args(
                            rel_path,
                            toks,
                            open,
                            close,
                            in_region(&regions, i),
                            &rng_vars,
                            &taints,
                            &mut facts,
                            &mut push,
                            diags,
                        );
                    }
                }
            }
        }

        // ---- float-fold sinks --------------------------------------------
        scan_fold_sink(
            rel_path,
            toks,
            body,
            i,
            &taints,
            &float_vecs,
            &mut facts,
            &mut push,
            diags,
        );

        i += 1;
    }

    // A function that returns a float-formatted string taints its callers'
    // bindings (depth-1 summary for the float-fmt chain).
    facts.returns_float_string = fn_returns_float_string(toks, body, &float_strings);
    facts.rng_cross_params.sort_unstable();
    facts.thread_fold_params.sort_unstable();
    facts.thread_fold_params.dedup();
    facts
}

/// The `let NAME =` binding immediately preceding a call, if the statement
/// has the shape `let name = call(..)`.
fn binding_before(toks: &[Tok], body: (usize, usize), call_at: usize) -> String {
    let (start, _) = statement_extent(toks, body, call_at);
    if ident(toks, start) == Some("let") {
        let mut n = start + 1;
        if ident(toks, n) == Some("mut") {
            n += 1;
        }
        if let Some(name) = ident(toks, n) {
            return name.to_string();
        }
    }
    String::new()
}

#[allow(clippy::too_many_arguments)]
fn classify_let(
    rel_path: &str,
    idx: &FileIndex,
    toks: &[Tok],
    name: &str,
    rhs: (usize, usize),
    decl: usize,
    regions: &[(usize, usize)],
    rng_vars: &mut BTreeMap<String, RngVar>,
    taints: &mut BTreeMap<String, Taint>,
    float_vecs: &mut BTreeMap<String, (Option<Taint>, usize)>,
    float_strings: &mut BTreeMap<String, u32>,
    push: &mut impl FnMut(&'static str, u32, String, &mut Vec<Diagnostic>),
    diags: &mut Vec<Diagnostic>,
) {
    let (from, to) = rhs;
    let line = toks.get(from).map_or(0, |t| t.line);

    // DetRng::new(seed): fresh stream; flag drawn-value reseeds.
    for k in from..to {
        if ident(toks, k) == Some("DetRng")
            && is_path_sep(toks, k + 1)
            && ident(toks, k + 3) == Some("new")
        {
            if let Some(open) = call_paren(toks, k + 3) {
                let close = close_paren(toks, open);
                if contains_draw(toks, open, close) {
                    push(
                        "det-rng-discipline",
                        line,
                        "`DetRng::new` re-seeded from a drawn value — seeds must be \
                         constants or derived keys (`seed ^ key`, `fork(tag)`), or the \
                         stream depends on another stream's position"
                            .to_string(),
                        diags,
                    );
                }
            }
            rng_vars.insert(
                name.to_string(),
                RngVar {
                    origin: RngOrigin::Fresh,
                    decl,
                },
            );
            return;
        }
    }

    // rng.fork(..) / rng.clone() / plain copy.
    if let Some(first) = ident(toks, from) {
        if let Some(parent) = rng_vars.get(first).cloned() {
            if punct(toks, from + 1, '.') && ident(toks, from + 2) == Some("fork") {
                rng_vars.insert(
                    name.to_string(),
                    RngVar {
                        origin: RngOrigin::Fresh,
                        decl,
                    },
                );
                return;
            }
            let is_clone = punct(toks, from + 1, '.') && ident(toks, from + 2) == Some("clone");
            let is_copy = to == from + 1;
            if is_clone || is_copy {
                if let Some((start, _)) = in_region(regions, from) {
                    if parent.decl < start {
                        match parent.origin {
                            RngOrigin::Param(_) => {}
                            _ => push(
                                "det-rng-discipline",
                                line,
                                format!(
                                    "RNG stream `{first}` is cloned/copied into a parallel \
                                     partition — tasks would replay the parent's sequence; \
                                     pass `{first}.fork(task_id)` instead"
                                ),
                                diags,
                            ),
                        }
                    }
                }
                rng_vars.insert(
                    name.to_string(),
                    RngVar {
                        origin: RngOrigin::Shared,
                        decl,
                    },
                );
                return;
            }
        }
    }

    // Thread-count taint: `thread_count(..)` / `available_parallelism()`,
    // or propagation from an already-tainted identifier. Results of the
    // partition APIs themselves are ordered merges: never tainted.
    let mut first_call_partition = false;
    for k in from..to {
        if let Some(n) = ident(toks, k) {
            if call_paren(toks, k).is_some() && !punct(toks, k.wrapping_sub(1), '.') {
                let (segs, _) = path_segments(toks, k);
                if is_partition_api(&idx.resolve_path(&segs)) {
                    first_call_partition = true;
                }
                let _ = n;
                break;
            }
        }
    }
    if !first_call_partition {
        let mut taint: Option<Taint> = None;
        for k in from..to {
            if let Some(n) = ident(toks, k) {
                if (n == "thread_count" || n == "available_parallelism")
                    && call_paren(toks, k).is_some()
                {
                    taint = Some(Taint::Thread);
                    break;
                }
                if let Some(t) = taints.get(n) {
                    taint = Some(match (taint, *t) {
                        (Some(Taint::Thread), _) | (_, Taint::Thread) => Taint::Thread,
                        (_, p) => p,
                    });
                }
            }
        }
        // vec![0.0; size]: a float collection, grouped by `size`.
        let is_float_vec = (from..to).any(|k| {
            ident(toks, k) == Some("vec")
                && punct(toks, k + 1, '!')
                && toks
                    .get(k + 3)
                    .is_some_and(|t| t.kind == TokKind::Num && t.text.contains('.'))
        });
        if is_float_vec {
            float_vecs.insert(name.to_string(), (taint, decl));
            return;
        }
        if let Some(t) = taint {
            taints.insert(name.to_string(), t);
            let _ = rel_path;
            return;
        }
        taints.remove(name);
    }

    // format!("{:.N}", ..): a float-formatted string.
    if ident(toks, from) == Some("format") && punct(toks, from + 1, '!') {
        let has_float = (from..to).any(|k| {
            toks.get(k)
                .is_some_and(|t| t.kind == TokKind::Str && float_spec(&t.text))
        });
        if has_float {
            float_strings.insert(name.to_string(), line);
            return;
        }
    }
    float_strings.remove(name);
    rng_vars.remove(name);
}

/// Scans a call's arguments for RNG and thread-tainted identifiers; flags
/// RNG streams captured from outside a partition region.
#[allow(clippy::too_many_arguments)]
fn scan_args(
    rel_path: &str,
    toks: &[Tok],
    open: usize,
    close: usize,
    region: Option<(usize, usize)>,
    rng_vars: &BTreeMap<String, RngVar>,
    taints: &BTreeMap<String, Taint>,
    facts: &mut FnFacts,
    push: &mut impl FnMut(&'static str, u32, String, &mut Vec<Diagnostic>),
    diags: &mut Vec<Diagnostic>,
) -> (Vec<usize>, Vec<usize>) {
    let mut rng_args = Vec::new();
    let mut thread_args = Vec::new();
    let mut arg = 0usize;
    let mut depth = 0usize;
    let mut j = open + 1;
    while j < close {
        if punct(toks, j, '(') || punct(toks, j, '[') || punct(toks, j, '{') || punct(toks, j, '<')
        {
            depth += 1;
        } else if punct(toks, j, ')')
            || punct(toks, j, ']')
            || punct(toks, j, '}')
            || (punct(toks, j, '>') && !punct(toks, j - 1, '-'))
        {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && punct(toks, j, ',') {
            arg += 1;
        } else if let Some(name) = ident(toks, j) {
            // A bare identifier argument (not a field access / method recv).
            let bare = !punct(toks, j + 1, '.') && !punct(toks, j.wrapping_sub(1), '.');
            if bare {
                if let Some(var) = rng_vars.get(name) {
                    // `&mut rng` / `rng` passed along.
                    if !rng_args.contains(&arg) {
                        rng_args.push(arg);
                    }
                    if let Some((start, _)) = region {
                        if var.decl < start {
                            match var.origin {
                                RngOrigin::Param(p) => {
                                    if !facts.rng_cross_params.contains(&p) {
                                        facts.rng_cross_params.push(p);
                                    }
                                }
                                _ => push(
                                    "det-rng-discipline",
                                    toks.get(j).map_or(0, |t| t.line),
                                    format!(
                                        "RNG stream `{name}` captured from outside the \
                                         partition is passed into a call — pass a \
                                         `fork(task_id)` child so each task owns its stream"
                                    ),
                                    diags,
                                ),
                            }
                        }
                    }
                }
                if taints.contains_key(name) && !thread_args.contains(&arg) {
                    thread_args.push(arg);
                }
            }
        }
        j += 1;
    }
    let _ = rel_path;
    (rng_args, thread_args)
}

/// Detects float reductions grouped by thread-derived values:
/// `vec![0.0; threads]` accumulators, `x[i % threads] += ..`, and
/// `.chunks(threads) .. .sum()/.fold(..)` chains.
#[allow(clippy::too_many_arguments)]
fn scan_fold_sink(
    rel_path: &str,
    toks: &[Tok],
    body: (usize, usize),
    i: usize,
    taints: &BTreeMap<String, Taint>,
    float_vecs: &BTreeMap<String, (Option<Taint>, usize)>,
    facts: &mut FnFacts,
    push: &mut impl FnMut(&'static str, u32, String, &mut Vec<Diagnostic>),
    diags: &mut Vec<Diagnostic>,
) {
    let _ = rel_path;
    let Some(name) = ident(toks, i) else {
        return;
    };
    let line = toks.get(i).map_or(0, |t| t.line);

    // `partials[expr] += v` where partials is a float vec and expr is
    // thread-tainted (directly or via the vec's size expression).
    if let Some((vec_taint, _)) = float_vecs.get(name) {
        if punct(toks, i + 1, '[') {
            let mut d = 0usize;
            let mut j = i + 1;
            let mut idx_taint: Option<Taint> = *vec_taint;
            while j < body.1 {
                if punct(toks, j, '[') {
                    d += 1;
                } else if punct(toks, j, ']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                } else if let Some(n) = ident(toks, j) {
                    if let Some(t) = taints.get(n) {
                        idx_taint = Some(match (idx_taint, *t) {
                            (Some(Taint::Thread), _) | (_, Taint::Thread) => Taint::Thread,
                            (_, p) => p,
                        });
                    }
                }
                j += 1;
            }
            let accum = punct(toks, j + 1, '+') && punct(toks, j + 2, '=');
            if accum {
                match idx_taint {
                    Some(Taint::Thread) => push(
                        "parallel-float-fold",
                        line,
                        format!(
                            "float accumulator `{name}` is indexed by a thread-derived \
                             value — per-worker partial sums reduce in thread order; merge \
                             through `parallel::run_tasks`/`run_indexed` results instead"
                        ),
                        diags,
                    ),
                    Some(Taint::Param(p)) if !facts.thread_fold_params.contains(&p) => {
                        facts.thread_fold_params.push(p);
                    }
                    _ => {}
                }
            }
        }
        // `partials.iter()...sum()` / `.fold(..)` where the vec was sized
        // by a thread-derived value.
        if punct(toks, i + 1, '.') {
            let (_, stmt_end) = statement_extent(toks, body, i);
            let reduces = (i + 2..stmt_end).any(|k| {
                matches!(ident(toks, k), Some("sum" | "fold" | "product"))
                    && punct(toks, k - 1, '.')
            });
            if reduces {
                match vec_taint {
                    Some(Taint::Thread) => push(
                        "parallel-float-fold",
                        line,
                        format!(
                            "float reduction over `{name}`, a collection sized by the \
                             thread count — the fold visits per-worker partials in thread \
                             order; use the ordered-merge results of \
                             `parallel::run_tasks`/`run_indexed`"
                        ),
                        diags,
                    ),
                    Some(Taint::Param(p)) if !facts.thread_fold_params.contains(p) => {
                        facts.thread_fold_params.push(*p);
                    }
                    _ => {}
                }
            }
        }
    }

    // `.chunks(threads)` followed by a float reduction in the same
    // statement.
    if name == "chunks" && punct(toks, i.wrapping_sub(1), '.') {
        if let Some(open) = call_paren(toks, i) {
            let close = close_paren(toks, open);
            let mut group_taint: Option<Taint> = None;
            for k in open + 1..close {
                if let Some(n) = ident(toks, k) {
                    if let Some(t) = taints.get(n) {
                        group_taint = Some(match (group_taint, *t) {
                            (Some(Taint::Thread), _) | (_, Taint::Thread) => Taint::Thread,
                            (_, p) => p,
                        });
                    }
                }
            }
            if let Some(t) = group_taint {
                let (_, stmt_end) = statement_extent(toks, body, i);
                let float_reduce = (close..stmt_end).any(|k| {
                    matches!(ident(toks, k), Some("sum" | "fold" | "product"))
                        && punct(toks, k - 1, '.')
                }) && (close..stmt_end).any(|k| {
                    matches!(ident(toks, k), Some("f64" | "f32"))
                        || toks
                            .get(k)
                            .is_some_and(|t| t.kind == TokKind::Num && t.text.contains('.'))
                });
                if float_reduce {
                    match t {
                        Taint::Thread => push(
                            "parallel-float-fold",
                            line,
                            "float reduction over `.chunks(thread_count)` groups — chunk \
                             boundaries move with `PATU_THREADS`, so the partial sums \
                             reorder; reduce through the ordered partition APIs"
                                .to_string(),
                            diags,
                        ),
                        Taint::Param(p) => {
                            if !facts.thread_fold_params.contains(&p) {
                                facts.thread_fold_params.push(p);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Handles format-family macros for the float-fmt chain extension and
/// records JSON-keyed macro sinks for the global pass.
#[allow(clippy::too_many_arguments)]
fn analyze_macro(
    rel_path: &str,
    toks: &[Tok],
    i: usize,
    name: &str,
    float_strings: &BTreeMap<String, u32>,
    facts: &mut FnFacts,
    push: &mut impl FnMut(&'static str, u32, String, &mut Vec<Diagnostic>),
    diags: &mut Vec<Diagnostic>,
) {
    let _ = rel_path;
    if !matches!(
        name,
        "format" | "write" | "writeln" | "format_args" | "print" | "println"
    ) {
        return;
    }
    if !punct(toks, i + 2, '(') {
        return;
    }
    let open = i + 2;
    let close = close_paren(toks, open);
    // The controlling literal: first Str token at top level.
    let mut literal: Option<&Tok> = None;
    let mut depth = 0usize;
    for j in open + 1..close {
        if punct(toks, j, '(') || punct(toks, j, '[') || punct(toks, j, '{') {
            depth += 1;
        } else if punct(toks, j, ')') || punct(toks, j, ']') || punct(toks, j, '}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 {
            if let Some(t) = toks.get(j) {
                if t.kind == TokKind::Str {
                    literal = Some(t);
                    break;
                }
            }
        }
    }
    let Some(lit) = literal else {
        return;
    };
    let json_keyed = lit.text.contains("\\\":") || lit.text.contains("\":");
    if !json_keyed {
        return;
    }
    // Collect top-level identifier args after the literal.
    let mut args: Vec<(String, u32)> = Vec::new();
    let mut nested_float = None;
    let mut d = 0usize;
    let mut j = open + 1;
    while j < close {
        if punct(toks, j, '(') || punct(toks, j, '[') || punct(toks, j, '{') {
            d += 1;
        } else if punct(toks, j, ')') || punct(toks, j, ']') || punct(toks, j, '}') {
            d = d.saturating_sub(1);
        } else if let Some(n) = ident(toks, j) {
            if matches!(n, "format" | "format_args") && punct(toks, j + 1, '!') {
                let mopen = j + 2;
                if punct(toks, mopen, '(') {
                    let mclose = close_paren(toks, mopen);
                    let has_float = (mopen..mclose).any(|k| {
                        toks.get(k)
                            .is_some_and(|t| t.kind == TokKind::Str && float_spec(&t.text))
                    });
                    if has_float {
                        nested_float = toks.get(j).map(|t| t.line);
                    }
                    j = mclose;
                }
            } else if d == 0 && !punct(toks, j + 1, '.') && !punct(toks, j.wrapping_sub(1), '.') {
                if let Some(t) = toks.get(j) {
                    args.push((n.to_string(), t.line));
                }
            }
        }
        j += 1;
    }
    for (arg, aline) in &args {
        if float_strings.contains_key(arg) {
            push(
                "float-fmt",
                *aline,
                format!(
                    "`{arg}` was formatted with a float spec upstream and reaches a JSON \
                     literal here — non-finite values would emit `inf`/`NaN`; route the \
                     number through `patu_obs::json::num`/`num_fixed` at this sink"
                ),
                diags,
            );
        }
    }
    if let Some(nline) = nested_float {
        push(
            "float-fmt",
            nline,
            "nested `format!`/`format_args!` with a float spec inside a JSON literal — \
             route through `patu_obs::json::num`/`num_fixed`"
                .to_string(),
            diags,
        );
    }
    facts
        .json_sinks
        .push((lit.line, args.into_iter().map(|(a, _)| a).collect()));
}

/// Whether the function's trailing expression (or an explicit `return`)
/// yields a float-formatted string.
fn fn_returns_float_string(
    toks: &[Tok],
    body: (usize, usize),
    float_strings: &BTreeMap<String, u32>,
) -> bool {
    // Direct: `format!("{:.N}"..)` as the trailing expression or returned.
    for k in body.0..body.1 {
        if ident(toks, k) == Some("format") && punct(toks, k + 1, '!') && punct(toks, k + 2, '(') {
            let close = close_paren(toks, k + 2);
            let has_float = (k + 2..close).any(|m| {
                toks.get(m)
                    .is_some_and(|t| t.kind == TokKind::Str && float_spec(&t.text))
            });
            if has_float {
                let terminated = punct(toks, close + 1, ';');
                let returned = ident(toks, k.wrapping_sub(1)) == Some("return");
                if !terminated || returned {
                    return true;
                }
            }
        }
    }
    // Indirect: trailing bare identifier that holds a float string.
    if body.1 >= 1 {
        if let Some(last) = ident(toks, body.1 - 1) {
            if float_strings.contains_key(last) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::resolve;
    use std::collections::BTreeMap;

    fn analyze(src: &str) -> (Vec<FnFacts>, Vec<Diagnostic>) {
        let lexed = lexer::lex(src);
        let idx = resolve::index_file("crates/fake/src/engine.rs", &lexed.toks, &BTreeMap::new());
        let mut diags = Vec::new();
        let facts = idx
            .fns
            .iter()
            .map(|f| {
                analyze_fn(
                    "crates/fake/src/engine.rs",
                    &idx,
                    f,
                    &lexed.toks,
                    true,
                    &mut diags,
                )
            })
            .collect();
        (facts, diags)
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn captured_rng_draw_in_partition_is_flagged() {
        let src = "use patu_sim::parallel;\nuse patu_gmath::DetRng;\n\
                   fn bad(seed: u64) -> Vec<u64> {\n\
                       let mut rng = DetRng::new(seed);\n\
                       parallel::run_indexed(4, 8, |i| rng.next_u64() + i as u64)\n\
                   }\n";
        let (_, diags) = analyze(src);
        assert_eq!(rules(&diags), vec!["det-rng-discipline"]);
    }

    #[test]
    fn forked_child_in_partition_is_clean() {
        let src = "use patu_sim::parallel;\nuse patu_gmath::DetRng;\n\
                   fn good(seed: u64) -> Vec<u64> {\n\
                       let rng = DetRng::new(seed);\n\
                       parallel::run_indexed(4, 8, |i| {\n\
                           let mut child = rng.fork(i as u64);\n\
                           child.next_u64()\n\
                       })\n\
                   }\n";
        let (_, diags) = analyze(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn reseed_from_drawn_value_is_flagged() {
        let src = "use patu_gmath::DetRng;\n\
                   fn bad(seed: u64) -> u64 {\n\
                       let mut a = DetRng::new(seed);\n\
                       let mut b = DetRng::new(a.next_u64());\n\
                       b.next_u64()\n\
                   }\n";
        let (_, diags) = analyze(src);
        assert_eq!(rules(&diags), vec!["det-rng-discipline"]);
    }

    #[test]
    fn thread_grouped_float_fold_is_flagged() {
        let src = "use patu_sim::parallel;\n\
                   fn bad(explicit: Option<usize>, vals: &[f64]) -> f64 {\n\
                       let t = parallel::thread_count(explicit);\n\
                       let mut partials = vec![0.0f64; t];\n\
                       for (i, v) in vals.iter().enumerate() {\n\
                           partials[i % t] += v;\n\
                       }\n\
                       partials.iter().sum::<f64>()\n\
                   }\n";
        let (_, diags) = analyze(src);
        assert_eq!(
            rules(&diags),
            vec!["parallel-float-fold", "parallel-float-fold"]
        );
    }

    #[test]
    fn ordered_merge_results_are_not_tainted() {
        let src = "use patu_sim::parallel;\n\
                   fn good(explicit: Option<usize>) -> f64 {\n\
                       let t = parallel::thread_count(explicit);\n\
                       let outputs = parallel::run_indexed(t, 8, |i| i as f64);\n\
                       outputs.iter().sum::<f64>()\n\
                   }\n";
        let (_, diags) = analyze(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn chunked_float_reduction_is_flagged() {
        let src = "use patu_sim::parallel;\n\
                   fn bad(explicit: Option<usize>, vals: &[f64]) -> f64 {\n\
                       let t = parallel::thread_count(explicit);\n\
                       vals.chunks(t).map(|c| c.iter().sum::<f64>()).sum::<f64>()\n\
                   }\n";
        let (_, diags) = analyze(src);
        assert_eq!(rules(&diags), vec!["parallel-float-fold"]);
    }

    #[test]
    fn rng_param_in_partition_becomes_a_summary_not_a_diag() {
        let src = "use patu_sim::parallel;\nuse patu_gmath::DetRng;\n\
                   fn helper(rng: &mut DetRng) -> Vec<u64> {\n\
                       parallel::run_indexed(4, 8, |i| rng.next_u64() + i as u64)\n\
                   }\n";
        let (facts, diags) = analyze(src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(facts[0].rng_cross_params, vec![0]);
    }

    #[test]
    fn env_reads_and_calls_are_recorded() {
        let src = "fn reader() -> Option<String> { std::env::var(\"PATU_DEMO\").ok() }\n\
                   fn caller() { let x = reader(); let _ = x; }\n";
        let (facts, _) = analyze(src);
        assert_eq!(facts[0].env_reads, vec![("PATU_DEMO".to_string(), 1)]);
        assert_eq!(facts[1].calls.len(), 1);
        assert_eq!(facts[1].calls[0].target, "P:fake::engine::reader");
        assert_eq!(facts[1].calls[0].binds, "x");
    }

    #[test]
    fn float_string_reaching_json_literal_is_flagged() {
        let src = "fn bad(v: f64) -> String {\n\
                       let pretty = format!(\"{v:.3}\");\n\
                       format!(\"{{\\\"mean\\\": {}}}\", pretty)\n\
                   }\n";
        let (_, diags) = analyze(src);
        assert_eq!(rules(&diags), vec!["float-fmt"]);
    }

    #[test]
    fn float_string_to_human_output_is_fine() {
        let src = "fn good(v: f64) -> String {\n\
                       let pretty = format!(\"{v:.3}\");\n\
                       println!(\"| {} |\", pretty);\n\
                       pretty\n\
                   }\n";
        let (facts, diags) = analyze(src);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(facts[0].returns_float_string, "trailing float string");
    }

    #[test]
    fn task_vector_statements_are_partition_regions() {
        let src = "use patu_sim::parallel;\nuse patu_gmath::DetRng;\n\
                   fn bad(seed: u64) {\n\
                       let mut rng = DetRng::new(seed);\n\
                       let tasks: Vec<parallel::Task<'_, u64>> = (0..4)\n\
                           .map(|i| Box::new(move || rng.next_u64() + i) as parallel::Task<'_, u64>)\n\
                           .collect();\n\
                       let _ = parallel::run_tasks(2, tasks);\n\
                   }\n";
        let (_, diags) = analyze(src);
        assert_eq!(rules(&diags), vec!["det-rng-discipline"]);
    }
}
