//! Deterministic workspace walk: every `.rs` and `Cargo.toml` under the
//! root, in sorted repo-relative order, skipping build output (`target/`),
//! experiment artifacts (`out/`), hidden directories, and lint-test
//! `fixtures/` directories (whose files carry violations on purpose).

use crate::LintError;
use std::path::Path;

const SKIP_DIRS: &[&str] = &["target", "out", "fixtures", "node_modules"];

/// Collects lintable files under `root` as sorted repo-relative paths with
/// forward slashes.
///
/// # Errors
///
/// Returns [`LintError`] when a directory cannot be read.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, LintError> {
    let mut out = Vec::new();
    visit(root, String::new(), &mut out)?;
    out.sort();
    Ok(out)
}

fn visit(root: &Path, rel_dir: String, out: &mut Vec<String>) -> Result<(), LintError> {
    let full = if rel_dir.is_empty() {
        root.to_path_buf()
    } else {
        root.join(&rel_dir)
    };
    let entries = std::fs::read_dir(&full).map_err(|source| LintError {
        context: format!("listing {}", full.display()),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| LintError {
            context: format!("listing {}", full.display()),
            source,
        })?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let rel = if rel_dir.is_empty() {
            name.clone()
        } else {
            format!("{rel_dir}/{name}")
        };
        let file_type = entry.file_type().map_err(|source| LintError {
            context: format!("inspecting {rel}"),
            source,
        })?;
        if file_type.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            visit(root, rel, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_finds_this_crate_and_skips_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
        let files = workspace_files(&root).unwrap();
        assert!(files.contains(&"crates/lint/src/lib.rs".to_string()));
        assert!(files.contains(&"Cargo.toml".to_string()));
        assert!(
            files.iter().all(|f| !f.contains("fixtures/")),
            "fixtures must be skipped"
        );
        assert!(
            files.iter().all(|f| !f.starts_with("target/")),
            "target must be skipped"
        );
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order is deterministic");
    }
}
