//! Item-level resolution on top of the token stream: module paths, `use`
//! maps, and `fn`/`impl` boundaries with generics-tolerant signatures.
//!
//! This is still not a full parser — it recognizes exactly the item shapes
//! the interprocedural rules need (`mod`, `use`, `impl`, `trait`, `fn`) and
//! treats everything else as opaque token runs. The payoff is a
//! [`FileIndex`] per source file: every function with its qualified name,
//! parameter list and body token range, plus an alias→absolute-path map
//! for resolving calls, all with zero external dependencies.

use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;

/// One function parameter: the binding name (empty for tuple/struct
/// patterns) and the flattened type text.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name, or `""` when the pattern is not a plain identifier.
    pub name: String,
    /// The type tokens, space-joined (`"& mut DetRng"`).
    pub ty: String,
}

/// One `fn` item (free function, inherent/trait method, or default trait
/// method) with its token extents.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Fully qualified name: `module::[Type::]name`.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (for test-region lookups).
    pub decl: usize,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Token-index range of the body, inclusive of both braces; `None` for
    /// bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
}

/// The resolved view of one source file.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// The file's module path (`patu_serve::exec`).
    pub module: String,
    /// The owning crate's package name, underscored (`patu_serve`).
    pub crate_name: String,
    /// `use` alias → absolute path (`DetRng` → `patu_gmath::DetRng`).
    pub uses: BTreeMap<String, String>,
    /// Prefixes imported via `use path::*`.
    pub globs: Vec<String>,
    /// Every function item in the file.
    pub fns: Vec<FnItem>,
}

fn punct(toks: &[Tok], i: usize, ch: char) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text.starts_with(ch))
}

fn ident(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i) {
        Some(t) if t.kind == TokKind::Ident => Some(&t.text),
        _ => None,
    }
}

fn is_path_sep(toks: &[Tok], i: usize) -> bool {
    punct(toks, i, ':') && punct(toks, i + 1, ':')
}

/// Computes the module path for a repo-relative file given the
/// `crates/<dir>` → package-name map from the workspace manifests.
pub fn module_path(rel_path: &str, crates: &BTreeMap<String, String>) -> (String, String) {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        if let Some((dir, tail)) = rest.split_once("/src/") {
            let key = format!("crates/{dir}");
            let crate_name = crates
                .get(&key)
                .cloned()
                .unwrap_or_else(|| dir.replace('-', "_"));
            let module = match tail {
                "lib.rs" | "main.rs" => crate_name.clone(),
                _ => {
                    let stem = tail.trim_end_matches(".rs").trim_end_matches("/mod");
                    format!("{crate_name}::{}", stem.replace('/', "::"))
                }
            };
            return (module, crate_name);
        }
    }
    // Integration tests, examples, top-level targets: a unique synthetic
    // module so their symbols never collide with library items.
    let sanitized: String = rel_path
        .trim_end_matches(".rs")
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    (format!("t::{sanitized}"), "t".to_string())
}

/// Skips a balanced `<...>` generic region starting at the `<`; `->` inside
/// bounds (`F: Fn() -> u32`) does not close the region. Returns the index
/// just past the matching `>`.
fn skip_generics(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if punct(toks, i, '<') {
            depth += 1;
        } else if punct(toks, i, '>') && !punct(toks, i.wrapping_sub(1), '-') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Returns the index just past the `}` matching the `{` at `open`.
fn skip_braces(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if punct(toks, i, '{') {
            depth += 1;
        } else if punct(toks, i, '}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

fn parse_params(toks: &[Tok], open: usize, close: usize) -> Vec<Param> {
    let mut params = Vec::new();
    let mut start = open + 1;
    let mut depth = 0usize;
    let mut i = open + 1;
    while i <= close {
        let at_end = i == close;
        let top_comma = depth == 0 && punct(toks, i, ',');
        if at_end || top_comma {
            if i > start {
                params.push(parse_one_param(&toks[start..i]));
            }
            start = i + 1;
        } else if punct(toks, i, '(') || punct(toks, i, '[') || punct(toks, i, '<') {
            depth += 1;
        } else if punct(toks, i, ')')
            || punct(toks, i, ']')
            || (punct(toks, i, '>') && !punct(toks, i.wrapping_sub(1), '-'))
        {
            depth = depth.saturating_sub(1);
        }
        i += 1;
    }
    params
}

fn parse_one_param(chunk: &[Tok]) -> Param {
    // `self`, `&self`, `&mut self`, `mut self`:
    let plain: Vec<&Tok> = chunk.iter().filter(|t| t.kind == TokKind::Ident).collect();
    if plain.first().is_some_and(|t| t.text == "mut") && plain.len() == 1
        || plain.first().is_some_and(|t| t.text == "self")
        || (plain.first().is_some_and(|t| t.text == "mut")
            && plain.get(1).is_some_and(|t| t.text == "self"))
    {
        return Param {
            name: "self".to_string(),
            ty: "Self".to_string(),
        };
    }
    // Find the top-level `:` separating pattern from type.
    let mut depth = 0usize;
    for (i, t) in chunk.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'(') | Some(b'[') | Some(b'<') => depth += 1,
                Some(b')') | Some(b']') | Some(b'>') => depth = depth.saturating_sub(1),
                Some(b':') if depth == 0 => {
                    // `::` is a path separator, not the pattern/type colon.
                    if chunk.get(i + 1).is_some_and(|n| n.text.starts_with(':')) {
                        continue;
                    }
                    let name = chunk[..i]
                        .iter()
                        .rev()
                        .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    let pattern_is_ident = chunk[..i]
                        .iter()
                        .all(|t| t.kind == TokKind::Ident || t.text.starts_with('&'));
                    let ty: Vec<String> = chunk[i + 1..].iter().map(|t| t.text.clone()).collect();
                    return Param {
                        name: if pattern_is_ident {
                            name
                        } else {
                            String::new()
                        },
                        ty: ty.join(" "),
                    };
                }
                _ => {}
            }
        }
    }
    Param {
        name: String::new(),
        ty: chunk
            .iter()
            .map(|t| t.text.clone())
            .collect::<Vec<_>>()
            .join(" "),
    }
}

/// Parses one `use` declaration starting just after the `use` keyword.
/// Returns (flat alias→path list, glob prefixes, index past the `;`).
fn parse_use(toks: &[Tok], start: usize) -> (Vec<(String, String)>, Vec<String>, usize) {
    let mut end = start;
    while end < toks.len() && !punct(toks, end, ';') {
        end += 1;
    }
    let mut flat = Vec::new();
    let mut globs = Vec::new();
    use_tree(&toks[start..end], &[], &mut flat, &mut globs);
    (flat, globs, end + 1)
}

/// Recursively expands a use-tree token slice under `prefix`.
fn use_tree(
    toks: &[Tok],
    prefix: &[String],
    flat: &mut Vec<(String, String)>,
    globs: &mut Vec<String>,
) {
    let mut segs: Vec<String> = prefix.to_vec();
    let mut i = 0;
    // Leading `pub` / visibility was consumed by the caller; skip stray ones.
    while let Some(t) = toks.get(i) {
        match t.kind {
            TokKind::Ident if t.text == "as" => {
                if let Some(alias) = ident(toks, i + 1) {
                    flat.push((alias.to_string(), segs.join("::")));
                    return;
                }
                return;
            }
            TokKind::Ident => {
                segs.push(t.text.clone());
                i += 1;
                if is_path_sep(toks, i) {
                    i += 2;
                    continue;
                }
            }
            TokKind::Punct if t.text.starts_with('*') => {
                globs.push(segs.join("::"));
                return;
            }
            TokKind::Punct if t.text.starts_with('{') => {
                // Split the brace group on top-level commas; recurse.
                let close = matching_brace(toks, i);
                let mut depth = 0usize;
                let mut item_start = i + 1;
                let mut j = i + 1;
                while j <= close {
                    if punct(toks, j, '{') {
                        depth += 1;
                    } else if punct(toks, j, '}') {
                        if depth == 0 {
                            if j > item_start {
                                use_tree(&toks[item_start..j], &segs, flat, globs);
                            }
                            break;
                        }
                        depth -= 1;
                    } else if depth == 0 && punct(toks, j, ',') {
                        if j > item_start {
                            use_tree(&toks[item_start..j], &segs, flat, globs);
                        }
                        item_start = j + 1;
                    }
                    j += 1;
                }
                return;
            }
            _ => {
                i += 1;
                continue;
            }
        }
        // No `::` after the segment: the path ends here, possibly renamed.
        if ident(toks, i) == Some("as") {
            if let Some(alias) = ident(toks, i + 1) {
                flat.push((alias.to_string(), segs.join("::")));
            }
            return;
        }
        if let Some(last) = segs.last() {
            flat.push((last.clone(), segs.join("::")));
        }
        return;
    }
    if segs.len() > prefix.len() {
        if let Some(last) = segs.last() {
            flat.push((last.clone(), segs.join("::")));
        }
    }
}

fn matching_brace(toks: &[Tok], open: usize) -> usize {
    skip_braces(toks, open).saturating_sub(1)
}

/// Builds the [`FileIndex`] for one lexed file.
pub fn index_file(rel_path: &str, toks: &[Tok], crates: &BTreeMap<String, String>) -> FileIndex {
    let (module, crate_name) = module_path(rel_path, crates);
    let mut idx = FileIndex {
        module: module.clone(),
        crate_name: crate_name.clone(),
        ..FileIndex::default()
    };

    // Scope stack: what each open brace belongs to.
    #[derive(Clone, Copy, PartialEq)]
    enum Tag {
        Mod,
        Impl,
        Other,
    }
    let mut stack: Vec<Tag> = Vec::new();
    let mut mods: Vec<String> = Vec::new();
    let mut impls: Vec<String> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        if punct(toks, i, '{') {
            stack.push(Tag::Other);
            i += 1;
            continue;
        }
        if punct(toks, i, '}') {
            match stack.pop() {
                Some(Tag::Mod) => {
                    mods.pop();
                }
                Some(Tag::Impl) => {
                    impls.pop();
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        let Some(word) = ident(toks, i) else {
            i += 1;
            continue;
        };
        match word {
            "mod" => {
                if let Some(name) = ident(toks, i + 1) {
                    if punct(toks, i + 2, '{') {
                        mods.push(name.to_string());
                        stack.push(Tag::Mod);
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            "use" => {
                let (flat, globs, next) = parse_use(toks, i + 1);
                for (alias, path) in flat {
                    idx.uses
                        .insert(alias, absolutize(&path, &module, &crate_name, &mods));
                }
                for g in globs {
                    idx.globs.push(absolutize(&g, &module, &crate_name, &mods));
                }
                i = next;
            }
            "impl" | "trait" => {
                let is_trait = word == "trait";
                let mut j = i + 1;
                if punct(toks, j, '<') {
                    j = skip_generics(toks, j);
                }
                // Collect the subject type: for `impl A for B`, B wins.
                let mut ty = String::new();
                while j < toks.len() && !punct(toks, j, '{') && !punct(toks, j, ';') {
                    if let Some(id) = ident(toks, j) {
                        match id {
                            "for" if !is_trait => ty.clear(),
                            "where" => break,
                            _ if ty.is_empty() => ty = id.to_string(),
                            _ => {}
                        }
                        j += 1;
                    } else if punct(toks, j, '<') {
                        j = skip_generics(toks, j);
                    } else {
                        j += 1;
                    }
                }
                // Seek the opening brace (past any where clause).
                while j < toks.len() && !punct(toks, j, '{') && !punct(toks, j, ';') {
                    j += 1;
                }
                if punct(toks, j, '{') {
                    impls.push(ty);
                    stack.push(Tag::Impl);
                    i = j + 1;
                } else {
                    i = j + 1;
                }
            }
            "fn" => {
                if let Some((item, next)) = parse_fn(toks, i, &module, &mods, impls.last()) {
                    idx.fns.push(item);
                    i = next;
                } else {
                    i += 1;
                }
            }
            _ => {
                i += 1;
            }
        }
    }
    idx
}

fn parse_fn(
    toks: &[Tok],
    fn_kw: usize,
    module: &str,
    mods: &[String],
    impl_ty: Option<&String>,
) -> Option<(FnItem, usize)> {
    let name = ident(toks, fn_kw + 1)?.to_string();
    let line = toks.get(fn_kw).map(|t| t.line)?;
    let mut j = fn_kw + 2;
    if punct(toks, j, '<') {
        j = skip_generics(toks, j);
    }
    if !punct(toks, j, '(') {
        return None;
    }
    // Find the matching `)`.
    let open = j;
    let mut depth = 0usize;
    while j < toks.len() {
        if punct(toks, j, '(') {
            depth += 1;
        } else if punct(toks, j, ')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    let close = j;
    let params = parse_params(toks, open, close);
    // Seek the body `{` or a `;` terminator, skipping return type, where
    // clauses, and any generics inside them.
    j = close + 1;
    while j < toks.len() && !punct(toks, j, '{') && !punct(toks, j, ';') {
        if punct(toks, j, '<') {
            j = skip_generics(toks, j);
        } else {
            j += 1;
        }
    }
    let body = if punct(toks, j, '{') {
        let end = skip_braces(toks, j);
        Some((j, end.saturating_sub(1)))
    } else {
        None
    };
    let next = match body {
        Some((_, end)) => end + 1,
        None => j + 1,
    };
    let mut qual = module.to_string();
    for m in mods {
        qual.push_str("::");
        qual.push_str(m);
    }
    if let Some(ty) = impl_ty {
        if !ty.is_empty() {
            qual.push_str("::");
            qual.push_str(ty);
        }
    }
    qual.push_str("::");
    qual.push_str(&name);
    Some((
        FnItem {
            name,
            qual,
            line,
            decl: fn_kw,
            params,
            body,
        },
        next,
    ))
}

/// Rewrites a use-path's leading `crate`/`self`/`super` to absolute form.
fn absolutize(path: &str, module: &str, crate_name: &str, mods: &[String]) -> String {
    let mut here = module.to_string();
    for m in mods {
        here.push_str("::");
        here.push_str(m);
    }
    if let Some(rest) = path.strip_prefix("crate::") {
        return format!("{crate_name}::{rest}");
    }
    if path == "crate" {
        return crate_name.to_string();
    }
    if let Some(rest) = path.strip_prefix("self::") {
        return format!("{here}::{rest}");
    }
    if let Some(rest) = path.strip_prefix("super::") {
        let parent = here.rsplit_once("::").map(|(p, _)| p).unwrap_or(crate_name);
        return format!("{parent}::{rest}");
    }
    path.to_string()
}

impl FileIndex {
    /// Resolves a call path (`["parallel", "run_indexed"]`) to an absolute
    /// candidate using the file's use map and module.
    pub fn resolve_path(&self, segs: &[String]) -> String {
        let Some(first) = segs.first() else {
            return String::new();
        };
        let rest = &segs[1..];
        let join = |head: &str, tail: &[String]| {
            if tail.is_empty() {
                head.to_string()
            } else {
                format!("{head}::{}", tail.join("::"))
            }
        };
        if let Some(abs) = self.uses.get(first) {
            return join(abs, rest);
        }
        match first.as_str() {
            "crate" => join(&self.crate_name, rest),
            "self" => join(&self.module, rest),
            "super" => {
                let parent = self
                    .module
                    .rsplit_once("::")
                    .map(|(p, _)| p)
                    .unwrap_or(&self.crate_name);
                join(parent, rest)
            }
            f if f == self.crate_name || f.starts_with("patu_") => segs.join("::"),
            "std" | "core" | "alloc" => segs.join("::"),
            _ => join(&self.module, segs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn index(src: &str) -> FileIndex {
        let lexed = lexer::lex(src);
        index_file("crates/fake/src/engine.rs", &lexed.toks, &BTreeMap::new())
    }

    #[test]
    fn fns_and_methods_get_qualified_names() {
        let src = "fn free(a: u32, b: &mut DetRng) -> u32 { a }\n\
                   struct S;\n\
                   impl S {\n    pub fn method(&self, x: f64) -> f64 { x }\n}\n\
                   impl std::fmt::Display for S {\n    fn fmt(&self) {}\n}\n\
                   mod inner {\n    fn nested() {}\n}\n";
        let idx = index(src);
        let quals: Vec<&str> = idx.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "fake::engine::free",
                "fake::engine::S::method",
                "fake::engine::S::fmt",
                "fake::engine::inner::nested",
            ]
        );
        let free = &idx.fns[0];
        assert_eq!(free.params.len(), 2);
        assert_eq!(free.params[0].name, "a");
        assert_eq!(free.params[1].name, "b");
        assert!(free.params[1].ty.contains("DetRng"));
        assert!(free.body.is_some());
    }

    #[test]
    fn generic_signatures_parse() {
        let src =
            "fn run<F: Fn(u32) -> u32, T>(n: usize, f: F) -> Vec<T> where T: Clone { loop {} }\n\
                   fn after() {}\n";
        let idx = index(src);
        assert_eq!(idx.fns.len(), 2);
        assert_eq!(idx.fns[0].name, "run");
        assert_eq!(idx.fns[0].params.len(), 2);
        assert_eq!(idx.fns[1].name, "after");
    }

    #[test]
    fn use_map_expands_groups_and_aliases() {
        let src = "use patu_gmath::{DetRng, vec::Vec3 as V3};\n\
                   use crate::par::map_rows;\n\
                   use patu_sim::parallel;\n\
                   use std::collections::*;\n";
        let idx = index(src);
        assert_eq!(
            idx.uses.get("DetRng").map(String::as_str),
            Some("patu_gmath::DetRng")
        );
        assert_eq!(
            idx.uses.get("V3").map(String::as_str),
            Some("patu_gmath::vec::Vec3")
        );
        assert_eq!(
            idx.uses.get("map_rows").map(String::as_str),
            Some("fake::par::map_rows")
        );
        assert_eq!(
            idx.uses.get("parallel").map(String::as_str),
            Some("patu_sim::parallel")
        );
        assert_eq!(idx.globs, vec!["std::collections".to_string()]);
    }

    #[test]
    fn resolve_path_follows_uses() {
        let idx = index("use patu_sim::parallel;\n");
        let segs = vec!["parallel".to_string(), "run_indexed".to_string()];
        assert_eq!(idx.resolve_path(&segs), "patu_sim::parallel::run_indexed");
        let local = vec!["helper".to_string()];
        assert_eq!(idx.resolve_path(&local), "fake::engine::helper");
    }

    #[test]
    fn module_paths_map_crate_layout() {
        let mut crates = BTreeMap::new();
        crates.insert("crates/sim".to_string(), "patu_sim".to_string());
        assert_eq!(
            module_path("crates/sim/src/render.rs", &crates).0,
            "patu_sim::render"
        );
        assert_eq!(module_path("crates/sim/src/lib.rs", &crates).0, "patu_sim");
        assert_eq!(
            module_path("tests/parallel_determinism.rs", &crates).0,
            "t::tests_parallel_determinism"
        );
    }

    #[test]
    fn trait_methods_qualify_under_the_trait() {
        let src = "pub trait FrameService {\n    fn serve(&mut self, n: usize) -> u32;\n    fn idle(&self) {}\n}\n";
        let idx = index(src);
        let quals: Vec<&str> = idx.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "fake::engine::FrameService::serve",
                "fake::engine::FrameService::idle"
            ]
        );
        assert!(idx.fns[0].body.is_none());
        assert!(idx.fns[1].body.is_some());
    }
}
