//! `Cargo.toml` scanning for the `extern-dep` rule: the workspace's
//! offline/zero-dependency guarantee means every dependency in every
//! manifest must be a `path` (or workspace-inherited path) dependency.
//!
//! This is a line-oriented scan, not a TOML parser — the dependency tables
//! this workspace allows are simple enough that section headers plus
//! `key = value` lines cover them exactly, and a parser would be the kind
//! of dependency this rule exists to forbid.

use crate::diag::Diagnostic;
use crate::lexer;

const DEP_SECTIONS: &[&str] = &["dependencies", "dev-dependencies", "build-dependencies"];

/// Strips a trailing `# comment`, honoring basic and literal strings, and
/// returns `(code, comment)`.
fn split_comment(line: &str) -> (&str, Option<&str>) {
    let mut in_basic = false;
    let mut in_literal = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '#' if !in_basic && !in_literal => {
                return (&line[..i], Some(&line[i + 1..]));
            }
            _ => {}
        }
    }
    (line, None)
}

fn dep_segment_index(section: &[String]) -> Option<usize> {
    section
        .iter()
        .position(|s| DEP_SECTIONS.contains(&s.as_str()))
}

fn extern_dep(rel_path: &str, line: u32, name: &str) -> Diagnostic {
    Diagnostic {
        rule: "extern-dep",
        path: rel_path.to_string(),
        line,
        message: format!(
            "external (non-path) dependency `{name}` — the workspace builds offline \
             with zero external crates; use a path dependency or drop it"
        ),
    }
}

/// Lints one manifest. Suppression works like in Rust sources, with TOML
/// comment syntax: `# patu-lint: allow(extern-dep) — <reason>` on the same
/// line or the line above.
pub fn lint_manifest(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Pass 1: pragmas (and their own validity).
    let mut suppressed: Vec<u32> = Vec::new();
    for (idx, raw_line) in src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let (_, comment) = split_comment(raw_line);
        let Some(comment) = comment else { continue };
        let Some(pragma) = lexer::parse_comment_pragma(comment, line_no) else {
            continue;
        };
        if !pragma.well_formed {
            out.push(Diagnostic {
                rule: "bad-pragma",
                path: rel_path.to_string(),
                line: line_no,
                message: format!(
                    "unrecognized pragma — expected `{} allow(<rule>) — <reason>`",
                    lexer::PRAGMA_MARKER
                ),
            });
            continue;
        }
        if !pragma.has_reason {
            out.push(Diagnostic {
                rule: "bad-pragma",
                path: rel_path.to_string(),
                line: line_no,
                message: "suppression pragma needs a reason after `allow(...)`".to_string(),
            });
            continue;
        }
        for rule in &pragma.rules {
            if !crate::rules::is_known_rule(rule) {
                out.push(Diagnostic {
                    rule: "bad-pragma",
                    path: rel_path.to_string(),
                    line: line_no,
                    message: format!("unknown rule `{rule}` in allow(...)"),
                });
            } else if rule == "extern-dep" {
                suppressed.push(line_no);
                suppressed.push(line_no + 1);
            }
        }
    }

    // Pass 2: dependency sections.
    let mut section: Vec<String> = Vec::new();
    // An open `[dependencies.<name>]` subtable: (header line, name, has path).
    let mut subtable: Option<(u32, String, bool)> = None;
    let close_subtable = |sub: &mut Option<(u32, String, bool)>, out: &mut Vec<Diagnostic>| {
        if let Some((line, name, ok)) = sub.take() {
            if !ok && !suppressed.contains(&line) {
                out.push(extern_dep(rel_path, line, &name));
            }
        }
    };

    for (idx, raw_line) in src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let (code, _) = split_comment(raw_line);
        let t = code.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with('[') {
            close_subtable(&mut subtable, &mut out);
            let name = t.trim_matches(['[', ']']).trim();
            section = name
                .split('.')
                .map(|s| s.trim().trim_matches(['"', '\'']).to_string())
                .collect();
            if let Some(pos) = dep_segment_index(&section) {
                if pos + 1 < section.len() {
                    let dep = section[pos + 1..].join(".");
                    subtable = Some((line_no, dep, false));
                }
            }
            continue;
        }
        if dep_segment_index(&section).is_none() {
            continue;
        }
        let Some((key, value)) = t.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if let Some(sub) = &mut subtable {
            if key == "path" || (key == "workspace" && value.starts_with("true")) {
                sub.2 = true;
            }
            continue;
        }
        let ok = (value.contains('{') && (value.contains("path") || value.contains("workspace")))
            || key.ends_with(".workspace") && value.starts_with("true");
        if !ok && !suppressed.contains(&line_no) {
            out.push(extern_dep(rel_path, line_no, key));
        }
    }
    close_subtable(&mut subtable, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: &str = "crates/fake/Cargo.toml";

    fn rules_hit(src: &str) -> Vec<(&'static str, u32)> {
        lint_manifest(M, src)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let src = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\n[dependencies]\n\
                   patu-obs = { workspace = true }\n\
                   patu-gpu = { path = \"../gpu\" }\npatu-core.workspace = true\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn versioned_git_and_registry_deps_fail() {
        let src = "[dependencies]\nserde = \"1.0\"\n\
                   rand = { version = \"0.8\", features = [\"small_rng\"] }\n\
                   syn = { git = \"https://github.com/dtolnay/syn\" }\n";
        assert_eq!(
            rules_hit(src),
            vec![("extern-dep", 2), ("extern-dep", 3), ("extern-dep", 4)]
        );
    }

    #[test]
    fn dep_subtables_need_a_path() {
        let good = "[dependencies.patu-obs]\npath = \"../obs\"\n";
        assert!(rules_hit(good).is_empty());
        let bad = "[dependencies.serde]\nversion = \"1.0\"\nfeatures = [\"derive\"]\n";
        assert_eq!(rules_hit(bad), vec![("extern-dep", 1)]);
    }

    #[test]
    fn dev_and_build_dependencies_are_covered() {
        let src = "[dev-dependencies]\nproptest = \"1\"\n\n[build-dependencies]\ncc = \"1\"\n";
        assert_eq!(rules_hit(src), vec![("extern-dep", 2), ("extern-dep", 5)]);
    }

    #[test]
    fn package_metadata_is_not_a_dependency() {
        let src = "[package]\nversion = \"0.1.0\"\nedition = \"2021\"\n\n[[bench]]\nname = \"x\"\nharness = false\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn toml_pragma_suppresses_with_reason() {
        let src = "[dependencies]\n\
                   # patu-lint: allow(extern-dep) — vendored locally in CI image\n\
                   weird = \"1.0\"\n\
                   other = \"1.0\"\n";
        assert_eq!(rules_hit(src), vec![("extern-dep", 4)]);
    }

    #[test]
    fn comments_and_strings_do_not_confuse_sections() {
        let src = "[dependencies] # serde = \"1.0\"\npatu-obs = { path = \"../obs\" } # not rand = \"0.8\"\n";
        assert!(rules_hit(src).is_empty());
    }
}
