//! The flight recorder: a bounded ring of recent events per cluster,
//! snapshotted into a postmortem dump when something goes wrong.

use crate::span::Event;
use std::collections::VecDeque;

/// A bounded ring buffer of the last `depth` [`Event`]s on one cluster.
///
/// Recording is O(1) and allocation-free after warm-up; the ring is
/// worker-private, so parallel rendering never contends on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    depth: usize,
    events: VecDeque<Event>,
}

impl FlightRecorder {
    /// A recorder keeping the last `depth` events (`depth` 0 keeps none).
    pub fn new(depth: usize) -> FlightRecorder {
        FlightRecorder {
            depth,
            events: VecDeque::with_capacity(depth.min(1024)),
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.depth == 0 {
            return;
        }
        if self.events.len() == self.depth {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.iter().copied().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A postmortem: the flight-recorder contents at the moment a watchdog
/// tripped or a fault fallback fired, plus enough context to reproduce the
/// run (frame, policy, fault seed) and locate the damage (cluster, tile,
/// cycle).
///
/// `frame`, `policy` and `fault_seed` are filled in by the frame-level
/// merge — the worker that captures the dump only knows its own cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Why the dump fired (`watchdog_trip`, `fault_fallback`).
    pub reason: &'static str,
    /// Cluster that captured the dump.
    pub cluster: u32,
    /// The offending tile.
    pub tile: u32,
    /// Simulated cycle of capture.
    pub cycle: u64,
    /// Frame index (filled at merge; 0 until then).
    pub frame: u32,
    /// Filtering policy of the run (filled at merge).
    pub policy: String,
    /// Fault-injection master seed of the run (filled at merge).
    pub fault_seed: u64,
    /// The ring contents at capture, oldest first.
    pub events: Vec<Event>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::EventKind;

    fn ev(cycle: u64) -> Event {
        Event {
            cycle,
            cluster: 0,
            tile: cycle as u32,
            kind: EventKind::TileBegin,
        }
    }

    #[test]
    fn ring_keeps_only_the_last_k() {
        let mut r = FlightRecorder::new(3);
        for c in 0..10 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        let cycles: Vec<u64> = r.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9], "oldest evicted first");
    }

    #[test]
    fn zero_depth_records_nothing() {
        let mut r = FlightRecorder::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn underfull_ring_preserves_order() {
        let mut r = FlightRecorder::new(16);
        r.push(ev(1));
        r.push(ev(2));
        let cycles: Vec<u64> = r.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 2]);
    }
}
