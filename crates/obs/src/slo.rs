//! Declarative SLOs with multi-window burn-rate alerting on the virtual
//! clock.
//!
//! An [`SloSpec`] names an objective and its error budget (the fraction of
//! events allowed to be "bad", fixed-point ×1000). An [`SloTracker`]
//! consumes a stream of `(cycle, good/bad)` observations and fires an
//! [`SloAlert`] when *both* of two trailing windows burn budget too fast:
//! a short window (catches sharp regressions quickly) and a long window
//! (filters one-off blips). Burn rate is `observed bad fraction / budget` —
//! a burn of 1.0× exhausts the budget exactly at the horizon; the default
//! thresholds (8× fast and 2× slow, the classic multi-window pairing)
//! fire on sustained fast burns only.
//!
//! Everything is integer arithmetic on the simulated clock, so alert cycles
//! are bit-identical across `PATU_THREADS` and host platforms. Alerts are
//! edge-triggered: once fired, a tracker re-arms only after the fast-window
//! burn drops back below its threshold.
//!
//! The `PATU_SLO` environment knob is read here and nowhere else (see
//! patu-lint's `ENV_KNOBS`): `PATU_SLO=off` disables tracking, and a
//! comma-separated `key=value` list overrides budgets —
//! `miss=<per-mille>`, `ssim_floor=<per-mille>`, `shed=<per-mille>`,
//! `horizon=<cycles>`. Unknown keys and malformed values are ignored.

use std::collections::VecDeque;

/// A declarative service-level objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// Stable name (e.g. `slo::miss::interactive`), used in events, JSONL
    /// lines, and reports.
    pub name: &'static str,
    /// Error budget: allowed bad fraction of events, fixed-point ×1000
    /// (50 = 5%). Clamped to at least 1 to keep burn rates finite.
    pub budget_x1000: u64,
    /// Fast (short) trailing window, in cycles.
    pub fast_window: u64,
    /// Slow (long) trailing window, in cycles. Samples older than this are
    /// evicted.
    pub slow_window: u64,
    /// Fast-window burn threshold, ×1000 (8000 = 8× budget rate).
    pub fast_threshold_x1000: u64,
    /// Slow-window burn threshold, ×1000 (2000 = 2× budget rate).
    pub slow_threshold_x1000: u64,
    /// Minimum fast-window sample count before the tracker may fire.
    pub min_samples: u64,
}

/// A fired burn-rate alert — a deterministic function of the observation
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloAlert {
    /// The objective that fired.
    pub slo: &'static str,
    /// Virtual-clock cycle of the observation that tipped the burn over.
    pub cycle: u64,
    /// Id of the job whose observation fired the alert.
    pub job: u64,
    /// Fast-window burn rate at fire time, ×1000.
    pub burn_fast_x1000: u64,
    /// Slow-window burn rate at fire time, ×1000.
    pub burn_slow_x1000: u64,
    /// The spec's budget, ×1000.
    pub budget_x1000: u64,
    /// The spec's fast window, in cycles.
    pub fast_window: u64,
    /// The spec's slow window, in cycles.
    pub slow_window: u64,
}

impl SloAlert {
    /// The `"slo"` JSONL line for this alert. All fields are integers.
    pub fn jsonl_line(&self) -> String {
        format!(
            "{{\"type\":\"slo\",\"slo\":\"{}\",\"cycle\":{},\"job\":{},\
             \"burn_fast_x1000\":{},\"burn_slow_x1000\":{},\"budget_x1000\":{},\
             \"fast_window\":{},\"slow_window\":{}}}",
            self.slo,
            self.cycle,
            self.job,
            self.burn_fast_x1000,
            self.burn_slow_x1000,
            self.budget_x1000,
            self.fast_window,
            self.slow_window
        )
    }
}

/// Rolling multi-window burn-rate state for one [`SloSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloTracker {
    spec: SloSpec,
    /// `(cycle, bad)` observations within the slow window, oldest first.
    samples: VecDeque<(u64, bool)>,
    firing: bool,
    alerts: u64,
}

impl SloTracker {
    /// A tracker for `spec` with sanitized (non-zero) budget and windows.
    pub fn new(mut spec: SloSpec) -> SloTracker {
        spec.budget_x1000 = spec.budget_x1000.max(1);
        spec.fast_window = spec.fast_window.max(1);
        spec.slow_window = spec.slow_window.max(spec.fast_window);
        SloTracker {
            spec,
            samples: VecDeque::new(),
            firing: false,
            alerts: 0,
        }
    }

    /// The tracked spec.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Total alerts fired so far.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }

    fn burn_x1000(&self, bad: u64, total: u64) -> u64 {
        if total == 0 {
            return 0;
        }
        bad * 1_000_000 / (total * self.spec.budget_x1000)
    }

    /// Feeds one observation (`bad == true` burns budget) at `cycle`,
    /// attributed to `job`. Returns a fired alert on a false→true edge of
    /// the multi-window burn condition. `cycle` must be non-decreasing
    /// across calls.
    pub fn observe(&mut self, cycle: u64, bad: bool, job: u64) -> Option<SloAlert> {
        let slow_edge = cycle.saturating_sub(self.spec.slow_window);
        while let Some(&(c, _)) = self.samples.front() {
            if c >= slow_edge {
                break;
            }
            self.samples.pop_front();
        }
        self.samples.push_back((cycle, bad));

        let (mut slow_bad, slow_total) = (0u64, self.samples.len() as u64);
        let (mut fast_bad, mut fast_total) = (0u64, 0u64);
        let fast_edge = cycle.saturating_sub(self.spec.fast_window);
        for &(c, b) in self.samples.iter() {
            if b {
                slow_bad += 1;
            }
            if c >= fast_edge {
                fast_total += 1;
                if b {
                    fast_bad += 1;
                }
            }
        }
        let burn_fast = self.burn_x1000(fast_bad, fast_total);
        let burn_slow = self.burn_x1000(slow_bad, slow_total);

        let hot = fast_total >= self.spec.min_samples
            && burn_fast >= self.spec.fast_threshold_x1000
            && burn_slow >= self.spec.slow_threshold_x1000;
        if hot && !self.firing {
            self.firing = true;
            self.alerts += 1;
            return Some(SloAlert {
                slo: self.spec.name,
                cycle,
                job,
                burn_fast_x1000: burn_fast,
                burn_slow_x1000: burn_slow,
                budget_x1000: self.spec.budget_x1000,
                fast_window: self.spec.fast_window,
                slow_window: self.spec.slow_window,
            });
        }
        if burn_fast < self.spec.fast_threshold_x1000 {
            self.firing = false;
        }
        None
    }
}

/// Parsed `PATU_SLO` configuration with sanitized defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloOptions {
    /// Whether SLO tracking is on (`PATU_SLO=off` disables it).
    pub enabled: bool,
    /// Deadline-miss budget per tier, ×1000. Default 50 (5%).
    pub miss_budget_x1000: u64,
    /// Delivered-SSIM floor, ×1000. A delivery below the floor is "bad".
    /// Default 900 (0.900).
    pub ssim_floor_x1000: u64,
    /// Budget for deliveries below the SSIM floor, ×1000. Default 50.
    pub ssim_budget_x1000: u64,
    /// Queue-shed budget, ×1000. Default 50 (5%).
    pub shed_budget_x1000: u64,
    /// Burn-window horizon override in cycles; 0 means "caller decides".
    pub horizon: u64,
}

impl Default for SloOptions {
    fn default() -> SloOptions {
        SloOptions {
            enabled: true,
            miss_budget_x1000: 50,
            ssim_floor_x1000: 900,
            ssim_budget_x1000: 50,
            shed_budget_x1000: 50,
            horizon: 0,
        }
    }
}

impl SloOptions {
    /// Options with tracking switched off.
    pub fn disabled() -> SloOptions {
        SloOptions {
            enabled: false,
            ..SloOptions::default()
        }
    }

    /// Reads `PATU_SLO` (the only reader of that knob). Malformed entries
    /// fall back to the defaults, mirroring the other knob readers.
    pub fn from_env() -> SloOptions {
        // patu-lint: allow(knob-at-construction) — read once at session setup to
        // build SloOptions; the burn-rate engine holds the parsed value
        match std::env::var("PATU_SLO") {
            Ok(raw) => SloOptions::parse(&raw),
            Err(_) => SloOptions::default(),
        }
    }

    /// Parses a `PATU_SLO` value (`off`, or `key=value` pairs separated by
    /// commas).
    pub fn parse(raw: &str) -> SloOptions {
        let trimmed = raw.trim();
        if trimmed.eq_ignore_ascii_case("off") {
            return SloOptions::disabled();
        }
        let mut opts = SloOptions::default();
        for pair in trimmed.split(',') {
            let Some((key, value)) = pair.split_once('=') else {
                continue;
            };
            let Ok(parsed) = value.trim().parse::<u64>() else {
                continue;
            };
            match key.trim() {
                "miss" => opts.miss_budget_x1000 = parsed.clamp(1, 1000),
                "ssim_floor" => opts.ssim_floor_x1000 = parsed.clamp(1, 1000),
                "ssim" => opts.ssim_budget_x1000 = parsed.clamp(1, 1000),
                "shed" => opts.shed_budget_x1000 = parsed.clamp(1, 1000),
                "horizon" => opts.horizon = parsed,
                _ => {}
            }
        }
        opts
    }

    /// The standard serve-layer SLO suite over a burn horizon of `horizon`
    /// cycles (overridden by the knob's `horizon=` if set): one deadline-miss
    /// objective per tier, a delivered-SSIM floor, and a queue-shed rate.
    /// Fast window = horizon/64, slow window = horizon/8.
    pub fn standard_specs(&self, horizon: u64) -> Vec<SloSpec> {
        let horizon = if self.horizon > 0 {
            self.horizon
        } else {
            horizon
        }
        .max(64);
        let fast = (horizon / 64).max(1);
        let slow = (horizon / 8).max(1);
        let spec = |name, budget_x1000| SloSpec {
            name,
            budget_x1000,
            fast_window: fast,
            slow_window: slow,
            fast_threshold_x1000: 8_000,
            slow_threshold_x1000: 2_000,
            min_samples: 8,
        };
        vec![
            spec("slo::miss::interactive", self.miss_budget_x1000),
            spec("slo::miss::standard", self.miss_budget_x1000),
            spec("slo::miss::batch", self.miss_budget_x1000),
            spec("slo::ssim_floor", self.ssim_budget_x1000),
            spec("slo::shed", self.shed_budget_x1000),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec {
            name: "slo::test",
            budget_x1000: 50,
            fast_window: 100,
            slow_window: 800,
            fast_threshold_x1000: 8_000,
            slow_threshold_x1000: 2_000,
            min_samples: 4,
        }
    }

    #[test]
    fn healthy_stream_never_fires() {
        let mut t = SloTracker::new(spec());
        for i in 0..200u64 {
            // 1-in-50 bad: 2% < 5% budget, burn < 1×.
            assert_eq!(t.observe(i * 7, i % 50 == 0, i), None);
        }
        assert_eq!(t.alerts(), 0);
    }

    #[test]
    fn sustained_burn_fires_once_then_rearms() {
        let mut t = SloTracker::new(spec());
        for i in 0..20u64 {
            t.observe(i, false, i);
        }
        // Everything bad: burn = 1000/50 = 20× in both windows once the
        // fast window fills.
        let mut fired = Vec::new();
        for i in 20..40u64 {
            if let Some(alert) = t.observe(i, true, i) {
                fired.push(alert);
            }
        }
        assert_eq!(fired.len(), 1, "edge-triggered: one alert per episode");
        assert_eq!(fired[0].slo, "slo::test");
        assert!(fired[0].burn_fast_x1000 >= 8_000);
        // Recovery drains the fast window below threshold…
        for i in 40..300u64 {
            assert_eq!(t.observe(i * 3, false, i), None);
        }
        // …after which a second episode fires again.
        let refired = (300..330u64)
            .filter_map(|i| t.observe(900 + i, true, i))
            .count();
        assert_eq!(refired, 1);
        assert_eq!(t.alerts(), 2);
    }

    #[test]
    fn min_samples_guards_cold_start() {
        let mut t = SloTracker::new(spec());
        assert_eq!(t.observe(0, true, 0), None);
        assert_eq!(t.observe(1, true, 1), None);
        assert_eq!(t.observe(2, true, 2), None);
        // Fourth bad sample reaches min_samples and fires.
        assert!(t.observe(3, true, 3).is_some());
    }

    #[test]
    fn alert_line_is_schema_shaped() {
        let alert = SloAlert {
            slo: "slo::shed",
            cycle: 42,
            job: 7,
            burn_fast_x1000: 9_000,
            burn_slow_x1000: 2_500,
            budget_x1000: 50,
            fast_window: 100,
            slow_window: 800,
        };
        let line = alert.jsonl_line();
        assert!(line.starts_with("{\"type\":\"slo\",\"slo\":\"slo::shed\""));
        assert!(line.contains("\"burn_fast_x1000\":9000"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn parse_handles_off_overrides_and_garbage() {
        assert!(!SloOptions::parse("off").enabled);
        assert!(!SloOptions::parse(" OFF ").enabled);
        let opts = SloOptions::parse("miss=100,ssim_floor=950,shed=25,horizon=5000");
        assert_eq!(opts.miss_budget_x1000, 100);
        assert_eq!(opts.ssim_floor_x1000, 950);
        assert_eq!(opts.shed_budget_x1000, 25);
        assert_eq!(opts.horizon, 5000);
        // Garbage entries fall back to defaults.
        let junk = SloOptions::parse("miss=lots,bogus,=,shed=30");
        assert_eq!(junk.miss_budget_x1000, 50);
        assert_eq!(junk.shed_budget_x1000, 30);
        // Budgets clamp into (0, 1000].
        assert_eq!(SloOptions::parse("miss=0").miss_budget_x1000, 1);
        assert_eq!(SloOptions::parse("miss=9999").miss_budget_x1000, 1000);
    }

    #[test]
    fn standard_specs_scale_windows_from_horizon() {
        let specs = SloOptions::default().standard_specs(64_000);
        assert_eq!(specs.len(), 5);
        for s in &specs {
            assert_eq!(s.fast_window, 1_000);
            assert_eq!(s.slow_window, 8_000);
        }
        let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        assert!(names.contains(&"slo::miss::interactive"));
        assert!(names.contains(&"slo::ssim_floor"));
        assert!(names.contains(&"slo::shed"));
        // Knob horizon override wins.
        let opts = SloOptions::parse("horizon=6400");
        assert_eq!(opts.standard_specs(64_000)[0].fast_window, 100);
    }
}
