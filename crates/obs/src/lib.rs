//! # patu-obs
//!
//! The simulator's deterministic telemetry layer. Its clock is **simulated
//! cycles, not wall time**, and every merge walks collectors in cluster
//! order — the same ordered-merge discipline as `patu_sim::parallel` — so
//! each artifact (JSONL event stream, Chrome trace, flight-recorder dump,
//! report table) is bit-identical across `PATU_THREADS` settings, with and
//! without fault injection.
//!
//! * [`config::TraceLevel`] / [`config::TelemetryConfig`] — the `PATU_TRACE`
//!   knob (`off | counters | spans`); `off` records nothing and costs a
//!   branch per call site.
//! * [`hist::Log2Histogram`] — fixed-bucket log2 latency/count histogram
//!   with deterministic `p50/p95/p99` (nearest-rank over integer buckets).
//! * [`span::Span`] — a named `[start, end)` cycle range on a [`span::Track`]
//!   (front-end, one per cluster, or the analysis track).
//! * [`collect::Collector`] — worker-private recorder (spans, counters,
//!   histograms, flight-recorder ring); [`collect::FrameTelemetry`] is the
//!   cluster-order merge of a frame's collectors.
//! * [`recorder::FlightRecorder`] — a bounded ring of the last events per
//!   cluster, dumped automatically when a watchdog trips or a fault
//!   fallback fires ([`recorder::FlightDump`]).
//! * [`sink`] — per-frame JSONL, Chrome Trace Event Format (load the file
//!   in `chrome://tracing` or Perfetto), and file output.
//! * [`report::Table`] — the single run-summary/diagnostic table renderer.
//! * [`json`] — hand-rolled JSON: escaping, non-finite-`f64`-to-`null`
//!   formatting, and a minimal parser for the schema checker.
//! * [`schema`] — validation of every JSONL line the sinks emit.
//! * [`attrib`] — per-frame cycle attribution by stage with an exact
//!   conservation invariant against the frame's critical path.
//! * [`slo`] — declarative SLOs with deterministic multi-window burn-rate
//!   alerting on the virtual clock (the `PATU_SLO` knob).
//! * [`dump`] — `PATU_OBS_DUMP` perceptual debug artifacts (PPM heatmaps
//!   and per-tile decision maps).
//!
//! Nothing here depends on wall clocks, random state, iteration order of
//! hash maps, or anything else that could differ between two runs of the
//! same simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod collect;
pub mod config;
pub mod dump;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod report;
pub mod schema;
pub mod sink;
pub mod slo;
pub mod span;

pub use attrib::{Attribution, Stage};
pub use collect::{Collector, FrameTelemetry};
pub use config::{trace_out_dir, TelemetryConfig, TraceLevel};
pub use dump::{heat_color, obs_dump_dir, write_ppm, TileGrid};
pub use hist::Log2Histogram;
pub use recorder::{FlightDump, FlightRecorder};
pub use report::Table;
pub use slo::{SloAlert, SloOptions, SloSpec, SloTracker};
pub use span::{Event, EventKind, Span, Track};
