//! Column-aligned plain-text tables — the single formatter behind the
//! telemetry run report and the bench diagnostics printouts.

/// A plain-text table with a header row, column-aligned output.
///
/// The first column is left-aligned (labels); every other column is
/// right-aligned (numbers). Rendering is deterministic: the output is a
/// pure function of the rows pushed.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: AsRef<str>>(headers: &[S]) -> Table {
        Table {
            headers: headers.iter().map(|h| h.as_ref().to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Short rows are padded with empty cells; extra cells
    /// beyond the header width are kept and get their own columns.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table, one line per row, with a dashed rule under the
    /// header. Ends with a newline.
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }

        let mut out = String::new();
        render_line(&mut out, &self.headers, &widths);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        render_line(&mut out, &rule, &widths);
        for row in &self.rows {
            render_line(&mut out, row, &widths);
        }
        out
    }
}

fn render_line(out: &mut String, cells: &[String], widths: &[usize]) {
    for (i, width) in widths.iter().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        let cell = cells.get(i).map_or("", String::as_str);
        let pad = width.saturating_sub(cell.chars().count());
        if i == 0 {
            out.push_str(cell);
            // Trailing pad only if more columns follow; avoids ragged EOLs.
            if widths.len() > 1 {
                out.push_str(&" ".repeat(pad));
            }
        } else {
            out.push_str(&" ".repeat(pad));
            out.push_str(cell);
        }
    }
    // Drop trailing spaces from padded final cells.
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(&["stage", "cycles"]);
        t.row(&["raster::tile", "123456"]);
        t.row(&["geom", "9"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "stage         cycles");
        assert_eq!(lines[1], "------------  ------");
        assert_eq!(lines[2], "raster::tile  123456");
        assert_eq!(lines[3], "geom               9");
    }

    #[test]
    fn handles_short_and_long_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only"]);
        t.row(&["x", "y", "extra"]);
        let text = t.render();
        assert!(text.contains("extra"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn empty_table_renders_header_and_rule() {
        let t = Table::new(&["name", "value"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }
}
