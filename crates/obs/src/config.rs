//! Telemetry configuration: the `PATU_TRACE` / `PATU_TRACE_OUT` knobs.

use std::path::PathBuf;

/// How much the telemetry layer records.
///
/// Levels are ordered: `Off < Counters < Spans`. Each level includes
/// everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Record nothing. Every instrumentation site reduces to one branch;
    /// no event, counter, histogram or flight-recorder state is touched.
    #[default]
    Off,
    /// Counters, histograms and the flight recorder, but no spans — the
    /// cheap always-on production setting.
    Counters,
    /// Everything, including per-tile spans for Chrome-trace export.
    Spans,
}

impl TraceLevel {
    /// Parses `off | counters | spans` (case-insensitive). Unknown values
    /// sanitize to `Off` so a typo can never slow a run down.
    pub fn parse(s: &str) -> TraceLevel {
        match s.trim().to_ascii_lowercase().as_str() {
            "counters" => TraceLevel::Counters,
            "spans" => TraceLevel::Spans,
            _ => TraceLevel::Off,
        }
    }

    /// Whether counters/histograms/flight-recorder sites record.
    pub fn counters_enabled(self) -> bool {
        self >= TraceLevel::Counters
    }

    /// Whether span sites record.
    pub fn spans_enabled(self) -> bool {
        self >= TraceLevel::Spans
    }

    /// The canonical lowercase name (`off`, `counters`, `spans`).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Counters => "counters",
            TraceLevel::Spans => "spans",
        }
    }
}

/// Telemetry configuration carried by render/experiment configs.
///
/// Deliberately `Copy` and tiny: the output *directory* is not part of it —
/// sinks are driven by whoever writes files (bench binaries, tests), via
/// [`trace_out_dir`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// What to record.
    pub level: TraceLevel,
    /// Flight-recorder ring depth (events kept per cluster).
    pub flight_depth: u32,
}

impl TelemetryConfig {
    /// Telemetry fully off (the default).
    pub fn disabled() -> TelemetryConfig {
        TelemetryConfig {
            level: TraceLevel::Off,
            flight_depth: DEFAULT_FLIGHT_DEPTH,
        }
    }

    /// A configuration at `level` with the default flight-recorder depth.
    pub fn with_level(level: TraceLevel) -> TelemetryConfig {
        TelemetryConfig {
            level,
            flight_depth: DEFAULT_FLIGHT_DEPTH,
        }
    }

    /// Resolves the `PATU_TRACE` environment variable (`off` when unset or
    /// unparseable).
    pub fn from_env() -> TelemetryConfig {
        let level = std::env::var("PATU_TRACE")
            .map(|v| TraceLevel::parse(&v))
            .unwrap_or(TraceLevel::Off);
        TelemetryConfig::with_level(level)
    }
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig::disabled()
    }
}

/// Default flight-recorder ring depth per cluster.
pub const DEFAULT_FLIGHT_DEPTH: u32 = 64;

/// The directory trace artifacts should be written to: `PATU_TRACE_OUT`,
/// or `None` when unset/empty (callers then skip file output).
pub fn trace_out_dir() -> Option<PathBuf> {
    match std::env::var("PATU_TRACE_OUT") {
        Ok(dir) if !dir.trim().is_empty() => Some(PathBuf::from(dir)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_inclusive() {
        assert!(TraceLevel::Off < TraceLevel::Counters);
        assert!(TraceLevel::Counters < TraceLevel::Spans);
        assert!(!TraceLevel::Off.counters_enabled());
        assert!(TraceLevel::Counters.counters_enabled());
        assert!(!TraceLevel::Counters.spans_enabled());
        assert!(TraceLevel::Spans.counters_enabled());
        assert!(TraceLevel::Spans.spans_enabled());
    }

    #[test]
    fn parse_is_lenient() {
        assert_eq!(TraceLevel::parse("spans"), TraceLevel::Spans);
        assert_eq!(TraceLevel::parse(" Counters "), TraceLevel::Counters);
        assert_eq!(TraceLevel::parse("off"), TraceLevel::Off);
        assert_eq!(
            TraceLevel::parse("bogus"),
            TraceLevel::Off,
            "typos sanitize to off"
        );
        assert_eq!(TraceLevel::parse(""), TraceLevel::Off);
    }

    #[test]
    fn names_round_trip() {
        for level in [TraceLevel::Off, TraceLevel::Counters, TraceLevel::Spans] {
            assert_eq!(TraceLevel::parse(level.name()), level);
        }
    }

    #[test]
    fn default_is_disabled() {
        let cfg = TelemetryConfig::default();
        assert_eq!(cfg.level, TraceLevel::Off);
        assert_eq!(cfg.flight_depth, DEFAULT_FLIGHT_DEPTH);
    }
}
