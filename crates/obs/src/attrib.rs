//! Per-frame cycle attribution: where a frame's simulated cycles went.
//!
//! The timing model is max-semantics (a frame ends when its slowest cluster
//! drains), so a naive per-stage sum would overcount. Attribution instead
//! follows the *critical cluster* — the one whose finish cycle equals the
//! frame time — where the identity
//!
//! ```text
//! finish = frontend + Σ_tiles (shading + stall)
//! ```
//!
//! holds exactly: each tile starts the cycle its predecessor ended (the
//! front-end only gates the first tile), advances by its shading cycles,
//! then stalls until its texture traffic drains. The shading part is
//! attributed to [`Stage::Shade`]; the stall part is scattered over the
//! measured texture-side work (predictor evaluations, hash probes, texel
//! fetches, cache and DRAM cycles) by largest-remainder proportional split,
//! which keeps the split integral and exactly conserving:
//!
//! ```text
//! frame_total() == frame cycles, always.
//! ```
//!
//! [`Stage::SsimBaseline`] counts analysis-track work (baseline renders for
//! SSIM scoring) that runs off the frame's critical path; it is reported but
//! excluded from the conservation sum.

use crate::report::Table;

/// A cycle-attribution stage. Order is the canonical report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Geometry front-end: vertex processing and tile binning.
    Setup,
    /// Fragment shading throughput on the critical cluster.
    Shade,
    /// Quality-predictor evaluations (stage-0 of the PATU decision).
    Predictor,
    /// Stage-1 approximation-table consultations.
    HashStage1,
    /// Stage-2 hash-table probe work.
    HashStage2,
    /// Texel addressing, fetch issue, and filtering math.
    TexelFetch,
    /// Cycles absorbed by L2 cache hits (L1 misses).
    CacheStall,
    /// DRAM access latency, including injected DRAM stall faults.
    Dram,
    /// Cross-frame tile reuse: blit and decision-refresh cycles spent on
    /// tiles the temporal store carried over instead of rerendering. On the
    /// critical path (a reused tile still occupies its cluster), but orders
    /// of magnitude cheaper than the fragment→texel work it replaces.
    Reuse,
    /// Off-critical-path analysis work: baseline renders for SSIM scoring.
    SsimBaseline,
}

impl Stage {
    /// All stages, in canonical report order.
    pub const ALL: [Stage; 10] = [
        Stage::Setup,
        Stage::Shade,
        Stage::Predictor,
        Stage::HashStage1,
        Stage::HashStage2,
        Stage::TexelFetch,
        Stage::CacheStall,
        Stage::Dram,
        Stage::Reuse,
        Stage::SsimBaseline,
    ];

    /// The stage's stable JSONL / report label.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Setup => "setup",
            Stage::Shade => "shade",
            Stage::Predictor => "predictor",
            Stage::HashStage1 => "hash_stage1",
            Stage::HashStage2 => "hash_stage2",
            Stage::TexelFetch => "texel_fetch",
            Stage::CacheStall => "cache_stall",
            Stage::Dram => "dram",
            Stage::Reuse => "reuse",
            Stage::SsimBaseline => "ssim_baseline",
        }
    }

    /// Parses a stable label back into a stage.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Whether the stage is on the frame's critical render path and thus
    /// participates in the conservation invariant.
    pub fn on_render_path(self) -> bool {
        !matches!(self, Stage::SsimBaseline)
    }

    fn index(self) -> usize {
        Stage::ALL
            .iter()
            .position(|&s| s == self)
            .unwrap_or_default()
    }
}

/// A frame's cycle budget broken down by [`Stage`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attribution {
    cycles: [u64; Stage::ALL.len()],
}

impl Attribution {
    /// An all-zero attribution.
    pub fn new() -> Attribution {
        Attribution::default()
    }

    /// Adds `cycles` to `stage`.
    pub fn add(&mut self, stage: Stage, cycles: u64) {
        self.cycles[stage.index()] += cycles;
    }

    /// Cycles attributed to `stage`.
    pub fn get(&self, stage: Stage) -> u64 {
        self.cycles[stage.index()]
    }

    /// Whether every stage is zero (nothing was attributed).
    pub fn is_empty(&self) -> bool {
        self.cycles.iter().all(|&c| c == 0)
    }

    /// Sum over render-path stages — by the conservation invariant, equal to
    /// the frame's total simulated cycles.
    pub fn frame_total(&self) -> u64 {
        Stage::ALL
            .iter()
            .filter(|s| s.on_render_path())
            .map(|&s| self.get(s))
            .sum()
    }

    /// Element-wise accumulation (for session-level aggregates).
    pub fn accumulate(&mut self, other: &Attribution) {
        for (mine, theirs) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *mine += theirs;
        }
    }

    /// `(stage, cycles)` pairs in canonical order, zeros included.
    pub fn entries(&self) -> Vec<(Stage, u64)> {
        Stage::ALL.iter().map(|&s| (s, self.get(s))).collect()
    }

    /// Splits `stall` cycles over the weighted stages by largest-remainder
    /// proportional division: the split is integral, sums to exactly
    /// `stall`, and ties break toward the earlier weight. With an all-zero
    /// weight vector the whole stall lands on [`Stage::TexelFetch`] (the
    /// stall observably came from texturing even if no component counter
    /// captured it).
    pub fn scatter_stall(&mut self, stall: u64, weights: &[(Stage, u64)]) {
        if stall == 0 {
            return;
        }
        let sum: u128 = weights.iter().map(|&(_, w)| u128::from(w)).sum();
        if sum == 0 {
            self.add(Stage::TexelFetch, stall);
            return;
        }
        // (remainder, original index, stage, floor share)
        let mut parts: Vec<(u128, usize, Stage, u64)> = Vec::with_capacity(weights.len());
        let mut assigned = 0u64;
        for (i, &(stage, w)) in weights.iter().enumerate() {
            let prod = u128::from(stall) * u128::from(w);
            let floor = (prod / sum) as u64;
            assigned += floor;
            parts.push((prod % sum, i, stage, floor));
        }
        let mut leftover = stall - assigned;
        parts.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for part in parts.iter_mut() {
            if leftover == 0 {
                break;
            }
            part.3 += 1;
            leftover -= 1;
        }
        for &(_, _, stage, share) in &parts {
            self.add(stage, share);
        }
    }

    /// Per-stage share of the render-path total, fixed-point ×10000
    /// (basis points). `SsimBaseline` is reported relative to the same
    /// render total so it can exceed 10000.
    pub fn shares_x10000(&self) -> Vec<(&'static str, u64)> {
        let total = self.frame_total().max(1);
        Stage::ALL
            .iter()
            .map(|&s| (s.name(), self.get(s) * 10_000 / total))
            .collect()
    }

    /// The `"attrib"` JSONL line for this frame: total render-path cycles
    /// plus every non-zero stage. All values are integers, so no float
    /// formatting is involved.
    pub fn jsonl_line(&self, frame: u32) -> String {
        let mut line = format!(
            "{{\"type\":\"attrib\",\"frame\":{frame},\"total\":{},\"stages\":{{",
            self.frame_total()
        );
        let mut first = true;
        for (stage, cycles) in self.entries() {
            if cycles == 0 {
                continue;
            }
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&format!("\"{}\":{cycles}", stage.name()));
        }
        line.push_str("}}");
        line
    }

    /// A flame-style table: stage, cycles, share (basis points rendered as
    /// a percentage), and a proportional bar.
    pub fn table(&self) -> Table {
        let mut table = Table::new(&["stage", "cycles", "share", ""]);
        let total = self.frame_total().max(1);
        for (stage, cycles) in self.entries() {
            if cycles == 0 {
                continue;
            }
            let bps = cycles * 10_000 / total;
            let bar_len = (cycles * 32 / total).min(32) as usize;
            table.row(&[
                stage.name().to_string(),
                cycles.to_string(),
                format!("{}.{:02}%", bps / 100, bps % 100),
                "#".repeat(bar_len),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(Stage::from_name("bogus"), None);
    }

    #[test]
    fn scatter_conserves_exactly() {
        let mut a = Attribution::new();
        a.scatter_stall(
            1_000_003,
            &[
                (Stage::Predictor, 7),
                (Stage::HashStage2, 11),
                (Stage::TexelFetch, 13),
                (Stage::Dram, 3),
            ],
        );
        assert_eq!(a.frame_total(), 1_000_003);
    }

    #[test]
    fn scatter_with_zero_weights_lands_on_texel_fetch() {
        let mut a = Attribution::new();
        a.scatter_stall(42, &[(Stage::Predictor, 0), (Stage::Dram, 0)]);
        assert_eq!(a.get(Stage::TexelFetch), 42);
        assert_eq!(a.frame_total(), 42);
    }

    #[test]
    fn scatter_ties_break_toward_earlier_weight() {
        // 3 cycles over two equal weights: floors are 1 each, the leftover
        // cycle goes to the first listed stage.
        let mut a = Attribution::new();
        a.scatter_stall(3, &[(Stage::CacheStall, 1), (Stage::Dram, 1)]);
        assert_eq!(a.get(Stage::CacheStall), 2);
        assert_eq!(a.get(Stage::Dram), 1);
    }

    #[test]
    fn ssim_baseline_is_off_the_conservation_sum() {
        let mut a = Attribution::new();
        a.add(Stage::Setup, 100);
        a.add(Stage::Shade, 900);
        a.add(Stage::SsimBaseline, 5_000);
        assert_eq!(a.frame_total(), 1_000);
        assert!(!a.is_empty());
    }

    #[test]
    fn reuse_is_on_the_render_path() {
        assert!(Stage::Reuse.on_render_path());
        let mut a = Attribution::new();
        a.add(Stage::Setup, 100);
        a.add(Stage::Reuse, 40);
        assert_eq!(a.frame_total(), 140, "reuse counts toward conservation");
        assert_eq!(Stage::from_name("reuse"), Some(Stage::Reuse));
    }

    #[test]
    fn jsonl_line_skips_zero_stages() {
        let mut a = Attribution::new();
        a.add(Stage::Setup, 10);
        a.add(Stage::Dram, 5);
        assert_eq!(
            a.jsonl_line(3),
            "{\"type\":\"attrib\",\"frame\":3,\"total\":15,\"stages\":{\"setup\":10,\"dram\":5}}"
        );
    }

    #[test]
    fn table_renders_nonzero_rows() {
        let mut a = Attribution::new();
        a.add(Stage::Setup, 25);
        a.add(Stage::Shade, 75);
        let table = a.table();
        assert_eq!(table.len(), 2);
        let rendered = table.render();
        assert!(rendered.contains("25.00%"));
        assert!(rendered.contains("75.00%"));
    }
}
