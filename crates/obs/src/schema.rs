//! The JSONL telemetry schema checker.
//!
//! Every line the sink emits is a self-contained JSON object with a
//! `"type"` discriminator; [`check_line`] validates the required keys and
//! key types for each line kind. CI runs this over a smoke render's output
//! (the `trace_check` bench binary), and the determinism test runs it over
//! everything it emits — so the writer in [`crate::sink`] cannot drift from
//! the documented format unnoticed.

use crate::json::{self, Json};

/// The line types the sink emits. `"serve"`, `"trace"` and `"slo"` lines
/// come from the `patu-serve` layer's per-job log rather than the frame
/// sink, but share the stream format so one checker covers both.
pub const LINE_TYPES: [&str; 11] = [
    "frame", "counter", "hist", "span", "event", "dump", "serve", "trace", "slo", "attrib",
    "temporal",
];

fn require_num(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing or non-numeric \"{key}\""))
}

fn require_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))
}

fn require_bool(obj: &Json, key: &str) -> Result<bool, String> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing or non-boolean \"{key}\""))
}

fn check_event_fields(obj: &Json) -> Result<(), String> {
    require_num(obj, "frame")?;
    require_num(obj, "cycle")?;
    require_num(obj, "cluster")?;
    require_num(obj, "tile")?;
    let kind = require_str(obj, "kind")?;
    match kind {
        "tile_begin" | "tile_end" | "watchdog_trip" => Ok(()),
        "fault" => {
            require_str(obj, "site")?;
            require_num(obj, "count")?;
            Ok(())
        }
        "fallback" => {
            require_num(obj, "count")?;
            Ok(())
        }
        "slo_burn" => {
            require_str(obj, "slo")?;
            require_num(obj, "burn_x1000")?;
            Ok(())
        }
        other => Err(format!("unknown event kind \"{other}\"")),
    }
}

/// Validates the span array of a `"trace"` line as a well-formed tree:
/// unique ids ≥ 1, exactly one root (`parent == 0`) matching the line's
/// `root` field, every non-zero parent present, and `start <= end` on each
/// node.
fn check_trace_tree(spans: &[Json], root: u64) -> Result<(), String> {
    if spans.is_empty() {
        return Err("trace has no spans".to_string());
    }
    let mut ids = Vec::with_capacity(spans.len());
    let mut parents = Vec::with_capacity(spans.len());
    let mut roots = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        let err = |e: String| format!("trace span {i}: {e}");
        let id = require_num(span, "id").map_err(err)? as u64;
        let parent =
            require_num(span, "parent").map_err(|e| format!("trace span {i}: {e}"))? as u64;
        require_str(span, "name").map_err(|e| format!("trace span {i}: {e}"))?;
        let start = require_num(span, "start").map_err(|e| format!("trace span {i}: {e}"))?;
        let end = require_num(span, "end").map_err(|e| format!("trace span {i}: {e}"))?;
        if id == 0 {
            return Err(format!("trace span {i}: id must be >= 1"));
        }
        if start > end {
            return Err(format!("trace span {i}: start {start} > end {end}"));
        }
        if ids.contains(&id) {
            return Err(format!("trace span {i}: duplicate id {id}"));
        }
        if parent == 0 {
            roots.push(id);
        }
        ids.push(id);
        parents.push(parent);
    }
    if roots.len() != 1 {
        return Err(format!("trace has {} roots, want exactly 1", roots.len()));
    }
    if roots[0] != root {
        return Err(format!("trace root field {root} != tree root {}", roots[0]));
    }
    for (i, &parent) in parents.iter().enumerate() {
        if parent != 0 && !ids.contains(&parent) {
            return Err(format!("trace span {i}: parent {parent} not in tree"));
        }
    }
    Ok(())
}

/// Validates one JSONL telemetry line.
///
/// # Errors
///
/// Returns a description of the first problem: unparseable JSON, a missing
/// `"type"`, an unknown type, or a missing/mistyped required key.
pub fn check_line(line: &str) -> Result<(), String> {
    let obj = json::parse(line)?;
    let line_type = require_str(&obj, "type")?.to_string();
    match line_type.as_str() {
        "frame" => {
            require_num(&obj, "frame")?;
            require_str(&obj, "policy")?;
            require_num(&obj, "seed")?;
            let level = require_str(&obj, "level")?;
            if !matches!(level, "off" | "counters" | "spans") {
                return Err(format!("unknown trace level \"{level}\""));
            }
            Ok(())
        }
        "counter" => {
            require_num(&obj, "frame")?;
            require_str(&obj, "name")?;
            require_num(&obj, "value")?;
            Ok(())
        }
        "hist" => {
            require_num(&obj, "frame")?;
            require_str(&obj, "name")?;
            let count = require_num(&obj, "count")?;
            require_num(&obj, "sum")?;
            require_num(&obj, "min")?;
            require_num(&obj, "max")?;
            let p50 = require_num(&obj, "p50")?;
            let p95 = require_num(&obj, "p95")?;
            let p99 = require_num(&obj, "p99")?;
            if count > 0.0 && !(p50 <= p95 && p95 <= p99) {
                return Err(format!(
                    "quantiles out of order: p50={p50} p95={p95} p99={p99}"
                ));
            }
            let buckets = obj
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| "missing or non-array \"buckets\"".to_string())?;
            for (i, bucket) in buckets.iter().enumerate() {
                let pair = bucket
                    .as_arr()
                    .filter(|p| p.len() == 2 && p.iter().all(|v| v.as_num().is_some()))
                    .ok_or_else(|| format!("bucket {i} is not a [lower, count] pair"))?;
                if pair[1].as_num() == Some(0.0) {
                    return Err(format!("bucket {i} has zero count (must be elided)"));
                }
            }
            Ok(())
        }
        "span" => {
            require_num(&obj, "frame")?;
            require_str(&obj, "name")?;
            require_str(&obj, "track")?;
            require_num(&obj, "tid")?;
            let start = require_num(&obj, "start")?;
            let end = require_num(&obj, "end")?;
            let dur = require_num(&obj, "dur")?;
            if end >= start && dur != end - start {
                return Err(format!("dur {dur} != end {end} - start {start}"));
            }
            // Tree spans carry id/parent; flat spans omit both.
            if let Some(id) = obj.get("id") {
                let id = id.as_num().ok_or("non-numeric \"id\"")?;
                if id < 1.0 {
                    return Err(format!("span id {id} must be >= 1"));
                }
                require_num(&obj, "parent")?;
            } else if obj.get("parent").is_some() {
                return Err("span has \"parent\" without \"id\"".to_string());
            }
            Ok(())
        }
        "event" => check_event_fields(&obj),
        "trace" => {
            require_num(&obj, "job")?;
            require_num(&obj, "client")?;
            require_num(&obj, "tier")?;
            let outcome = require_str(&obj, "outcome")?;
            if !matches!(outcome, "delivered" | "shed" | "failed") {
                return Err(format!("unknown trace outcome \"{outcome}\""));
            }
            let root = require_num(&obj, "root")? as u64;
            let spans = obj
                .get("spans")
                .and_then(Json::as_arr)
                .ok_or_else(|| "missing or non-array \"spans\"".to_string())?;
            check_trace_tree(spans, root)
        }
        "slo" => {
            require_str(&obj, "slo")?;
            require_num(&obj, "cycle")?;
            require_num(&obj, "job")?;
            require_num(&obj, "burn_fast_x1000")?;
            require_num(&obj, "burn_slow_x1000")?;
            let budget = require_num(&obj, "budget_x1000")?;
            if budget < 1.0 {
                return Err(format!("slo budget_x1000 {budget} must be >= 1"));
            }
            let fast = require_num(&obj, "fast_window")?;
            let slow = require_num(&obj, "slow_window")?;
            if fast < 1.0 || slow < fast {
                return Err(format!("slo windows out of order: fast={fast} slow={slow}"));
            }
            Ok(())
        }
        "attrib" => {
            require_num(&obj, "frame")?;
            let total = require_num(&obj, "total")?;
            let Some(Json::Obj(stages)) = obj.get("stages") else {
                return Err("missing or non-object \"stages\"".to_string());
            };
            let mut render_sum = 0.0f64;
            for (name, value) in stages {
                let stage = crate::attrib::Stage::from_name(name)
                    .ok_or_else(|| format!("unknown attribution stage \"{name}\""))?;
                let cycles = value
                    .as_num()
                    .ok_or_else(|| format!("non-numeric stage \"{name}\""))?;
                if cycles < 0.0 {
                    return Err(format!("negative stage \"{name}\""));
                }
                if stage.on_render_path() {
                    render_sum += cycles;
                }
            }
            if render_sum != total {
                return Err(format!(
                    "attribution not conserved: stage sum {render_sum} != total {total}"
                ));
            }
            Ok(())
        }
        "temporal" => {
            require_num(&obj, "frame")?;
            let reused = require_num(&obj, "reused")?;
            let repredicted = require_num(&obj, "repredicted")?;
            let rerendered = require_num(&obj, "rerendered")?;
            require_num(&obj, "reuse_cycles")?;
            for (name, value) in [
                ("reused", reused),
                ("repredicted", repredicted),
                ("rerendered", rerendered),
            ] {
                if value < 0.0 {
                    return Err(format!("negative temporal count \"{name}\""));
                }
            }
            if reused + repredicted + rerendered == 0.0 {
                return Err("temporal line classified no tiles".to_string());
            }
            Ok(())
        }
        "serve" => {
            require_num(&obj, "job")?;
            require_num(&obj, "client")?;
            require_num(&obj, "tier")?;
            require_str(&obj, "scene")?;
            require_num(&obj, "frame")?;
            let arrival = require_num(&obj, "arrival")?;
            require_num(&obj, "deadline")?;
            let outcome = require_str(&obj, "outcome")?;
            match outcome {
                "delivered" => {
                    let finish = require_num(&obj, "finish")?;
                    if finish < arrival {
                        return Err(format!("finish {finish} before arrival {arrival}"));
                    }
                    require_num(&obj, "theta")?;
                    require_num(&obj, "ssim")?;
                    require_num(&obj, "hash")?;
                    require_num(&obj, "gpu")?;
                    require_num(&obj, "retries")?;
                    require_bool(&obj, "hedged")?;
                    Ok(())
                }
                // A job abandoned by the resilience layer: its per-tier
                // retry budget ran out, or no remaining retry could meet
                // the deadline.
                "failed" => {
                    let finish = require_num(&obj, "finish")?;
                    if finish < arrival {
                        return Err(format!("finish {finish} before arrival {arrival}"));
                    }
                    require_num(&obj, "retries")?;
                    Ok(())
                }
                "shed" => Ok(()),
                other => Err(format!("unknown serve outcome \"{other}\"")),
            }
        }
        "dump" => {
            require_str(&obj, "reason")?;
            require_num(&obj, "frame")?;
            require_num(&obj, "cluster")?;
            require_num(&obj, "tile")?;
            require_num(&obj, "cycle")?;
            require_str(&obj, "policy")?;
            require_num(&obj, "seed")?;
            let events = obj
                .get("events")
                .and_then(Json::as_arr)
                .ok_or_else(|| "missing or non-array \"events\"".to_string())?;
            for (i, event) in events.iter().enumerate() {
                check_event_fields(event).map_err(|e| format!("dump event {i}: {e}"))?;
            }
            Ok(())
        }
        other => Err(format!("unknown line type \"{other}\"")),
    }
}

/// Validates a whole JSONL stream, returning `(line number, error)` for the
/// first bad line (1-based), or the number of valid lines.
///
/// # Errors
///
/// See [`check_line`]; blank lines are rejected too.
pub fn check_stream(stream: &str) -> Result<usize, (usize, String)> {
    let mut checked = 0usize;
    for (i, line) in stream.lines().enumerate() {
        check_line(line).map_err(|e| (i + 1, e))?;
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, FrameTelemetry};
    use crate::config::{TelemetryConfig, TraceLevel};
    use crate::sink;
    use crate::span::{Event, EventKind, Track};

    #[test]
    fn sink_output_passes_the_checker() {
        let mut frame = FrameTelemetry::new(TraceLevel::Spans, 1, "Patu".into(), 11);
        let mut c = Collector::new(
            TelemetryConfig::with_level(TraceLevel::Spans),
            Track::Cluster(1),
        );
        c.span_arg("raster::tile", 0, 64, "tile", 9);
        c.add("pixels", 256);
        c.record("texture::filter_latency", 17);
        c.event(Event {
            cycle: 3,
            cluster: 1,
            tile: 9,
            kind: EventKind::WatchdogTrip,
        });
        c.event(Event {
            cycle: 5,
            cluster: 1,
            tile: 9,
            kind: EventKind::Fallback { count: 4 },
        });
        c.dump("watchdog_trip", 6, 9);
        frame.absorb(c);
        let stream = sink::jsonl(&[frame]);
        let checked = check_stream(&stream).expect("all lines valid");
        assert!(
            checked >= 6,
            "frame+counter+hist+span+2 events+dump, got {checked}"
        );
    }

    #[test]
    fn rejects_missing_keys() {
        assert!(check_line("{\"type\":\"frame\",\"frame\":0}").is_err());
        assert!(check_line("{\"type\":\"counter\",\"frame\":0,\"name\":\"x\"}").is_err());
        assert!(check_line("{\"frame\":0}").is_err(), "no type");
        assert!(check_line("{\"type\":\"mystery\"}").is_err());
        assert!(check_line("not json").is_err());
    }

    #[test]
    fn rejects_inconsistent_spans_and_hists() {
        let bad_span = "{\"type\":\"span\",\"frame\":0,\"name\":\"x\",\"track\":\"cluster0\",\"tid\":1,\"start\":10,\"end\":30,\"dur\":5}";
        assert!(check_line(bad_span).unwrap_err().contains("dur"));
        let bad_hist = "{\"type\":\"hist\",\"frame\":0,\"name\":\"x\",\"count\":4,\"sum\":10,\"min\":1,\"max\":9,\"mean\":2.5,\"p50\":8,\"p95\":4,\"p99\":9,\"buckets\":[[1,4]]}";
        assert!(check_line(bad_hist).unwrap_err().contains("quantiles"));
    }

    #[test]
    fn rejects_unknown_event_kind() {
        let line = "{\"type\":\"event\",\"frame\":0,\"cycle\":1,\"cluster\":0,\"tile\":0,\"kind\":\"explosion\"}";
        assert!(check_line(line).unwrap_err().contains("explosion"));
    }

    #[test]
    fn serve_lines_validate() {
        let delivered = "{\"type\":\"serve\",\"job\":3,\"client\":1,\"tier\":0,\"scene\":\"oblivion\",\"frame\":2,\"arrival\":100,\"deadline\":900,\"outcome\":\"delivered\",\"finish\":400,\"theta\":0.4,\"ssim\":0.97,\"hash\":123456,\"gpu\":1,\"retries\":0,\"hedged\":false}";
        assert!(check_line(delivered).is_ok());
        let shed = "{\"type\":\"serve\",\"job\":4,\"client\":2,\"tier\":1,\"scene\":\"crysis\",\"frame\":0,\"arrival\":150,\"deadline\":950,\"outcome\":\"shed\"}";
        assert!(check_line(shed).is_ok());
        let backwards = "{\"type\":\"serve\",\"job\":5,\"client\":0,\"tier\":0,\"scene\":\"x\",\"frame\":0,\"arrival\":500,\"deadline\":900,\"outcome\":\"delivered\",\"finish\":400,\"theta\":0.4,\"ssim\":0.9,\"hash\":1,\"gpu\":0,\"retries\":0,\"hedged\":false}";
        assert!(check_line(backwards)
            .unwrap_err()
            .contains("before arrival"));
        let unknown = "{\"type\":\"serve\",\"job\":5,\"client\":0,\"tier\":0,\"scene\":\"x\",\"frame\":0,\"arrival\":1,\"deadline\":2,\"outcome\":\"vaporized\"}";
        assert!(check_line(unknown).unwrap_err().contains("vaporized"));
        let missing = "{\"type\":\"serve\",\"job\":5,\"outcome\":\"shed\"}";
        assert!(check_line(missing).is_err());
    }

    #[test]
    fn serve_resilience_fields_validate() {
        let hedged = "{\"type\":\"serve\",\"job\":7,\"client\":1,\"tier\":0,\"scene\":\"doom3\",\"frame\":1,\"arrival\":100,\"deadline\":500,\"outcome\":\"delivered\",\"finish\":300,\"theta\":0.75,\"ssim\":0.95,\"hash\":99,\"gpu\":2,\"retries\":1,\"hedged\":true}";
        assert!(check_line(hedged).is_ok());
        let no_gpu = "{\"type\":\"serve\",\"job\":7,\"client\":1,\"tier\":0,\"scene\":\"doom3\",\"frame\":1,\"arrival\":100,\"deadline\":500,\"outcome\":\"delivered\",\"finish\":300,\"theta\":0.75,\"ssim\":0.95,\"hash\":99,\"retries\":1,\"hedged\":true}";
        assert!(check_line(no_gpu).unwrap_err().contains("gpu"));
        let hedged_num = "{\"type\":\"serve\",\"job\":7,\"client\":1,\"tier\":0,\"scene\":\"doom3\",\"frame\":1,\"arrival\":100,\"deadline\":500,\"outcome\":\"delivered\",\"finish\":300,\"theta\":0.75,\"ssim\":0.95,\"hash\":99,\"gpu\":2,\"retries\":1,\"hedged\":1}";
        assert!(check_line(hedged_num).unwrap_err().contains("boolean"));
        let failed = "{\"type\":\"serve\",\"job\":8,\"client\":0,\"tier\":1,\"scene\":\"hl2\",\"frame\":0,\"arrival\":100,\"deadline\":400,\"outcome\":\"failed\",\"finish\":900,\"retries\":2}";
        assert!(check_line(failed).is_ok());
        let failed_backwards = "{\"type\":\"serve\",\"job\":8,\"client\":0,\"tier\":1,\"scene\":\"hl2\",\"frame\":0,\"arrival\":1000,\"deadline\":1400,\"outcome\":\"failed\",\"finish\":900,\"retries\":2}";
        assert!(check_line(failed_backwards)
            .unwrap_err()
            .contains("before arrival"));
        let failed_missing = "{\"type\":\"serve\",\"job\":8,\"client\":0,\"tier\":1,\"scene\":\"hl2\",\"frame\":0,\"arrival\":100,\"deadline\":400,\"outcome\":\"failed\",\"finish\":900}";
        assert!(check_line(failed_missing).unwrap_err().contains("retries"));
    }

    #[test]
    fn trace_lines_validate_tree_shape() {
        let good = "{\"type\":\"trace\",\"job\":3,\"client\":1,\"tier\":0,\"outcome\":\"delivered\",\"root\":1,\"spans\":[{\"id\":1,\"parent\":0,\"name\":\"serve::job\",\"start\":100,\"end\":900},{\"id\":2,\"parent\":1,\"name\":\"serve::queue\",\"start\":100,\"end\":150}]}";
        assert!(check_line(good).is_ok());
        let orphan = "{\"type\":\"trace\",\"job\":3,\"client\":1,\"tier\":0,\"outcome\":\"shed\",\"root\":1,\"spans\":[{\"id\":1,\"parent\":0,\"name\":\"serve::job\",\"start\":0,\"end\":9},{\"id\":2,\"parent\":7,\"name\":\"x\",\"start\":0,\"end\":1}]}";
        assert!(check_line(orphan).unwrap_err().contains("not in tree"));
        let two_roots = "{\"type\":\"trace\",\"job\":3,\"client\":1,\"tier\":0,\"outcome\":\"failed\",\"root\":1,\"spans\":[{\"id\":1,\"parent\":0,\"name\":\"a\",\"start\":0,\"end\":1},{\"id\":2,\"parent\":0,\"name\":\"b\",\"start\":0,\"end\":1}]}";
        assert!(check_line(two_roots).unwrap_err().contains("roots"));
        let dup = "{\"type\":\"trace\",\"job\":3,\"client\":1,\"tier\":0,\"outcome\":\"shed\",\"root\":1,\"spans\":[{\"id\":1,\"parent\":0,\"name\":\"a\",\"start\":0,\"end\":1},{\"id\":1,\"parent\":1,\"name\":\"b\",\"start\":0,\"end\":1}]}";
        assert!(check_line(dup).unwrap_err().contains("duplicate"));
        let empty = "{\"type\":\"trace\",\"job\":3,\"client\":1,\"tier\":0,\"outcome\":\"shed\",\"root\":1,\"spans\":[]}";
        assert!(check_line(empty).unwrap_err().contains("no spans"));
        let bad_outcome = "{\"type\":\"trace\",\"job\":3,\"client\":1,\"tier\":0,\"outcome\":\"lost\",\"root\":1,\"spans\":[{\"id\":1,\"parent\":0,\"name\":\"a\",\"start\":0,\"end\":1}]}";
        assert!(check_line(bad_outcome).unwrap_err().contains("lost"));
    }

    #[test]
    fn slo_lines_validate() {
        let good = "{\"type\":\"slo\",\"slo\":\"slo::shed\",\"cycle\":4200,\"job\":17,\"burn_fast_x1000\":9000,\"burn_slow_x1000\":2500,\"budget_x1000\":50,\"fast_window\":100,\"slow_window\":800}";
        assert!(check_line(good).is_ok());
        let bad_windows = "{\"type\":\"slo\",\"slo\":\"slo::shed\",\"cycle\":4200,\"job\":17,\"burn_fast_x1000\":9000,\"burn_slow_x1000\":2500,\"budget_x1000\":50,\"fast_window\":800,\"slow_window\":100}";
        assert!(check_line(bad_windows).unwrap_err().contains("windows"));
        let zero_budget = "{\"type\":\"slo\",\"slo\":\"s\",\"cycle\":1,\"job\":1,\"burn_fast_x1000\":1,\"burn_slow_x1000\":1,\"budget_x1000\":0,\"fast_window\":1,\"slow_window\":1}";
        assert!(check_line(zero_budget).unwrap_err().contains("budget"));
    }

    #[test]
    fn attrib_lines_enforce_conservation() {
        use crate::attrib::{Attribution, Stage};
        let mut a = Attribution::new();
        a.add(Stage::Setup, 100);
        a.add(Stage::Shade, 400);
        a.add(Stage::Dram, 500);
        a.add(Stage::SsimBaseline, 9_999);
        assert!(check_line(&a.jsonl_line(2)).is_ok());
        let broken = "{\"type\":\"attrib\",\"frame\":0,\"total\":100,\"stages\":{\"setup\":60,\"shade\":60}}";
        assert!(check_line(broken).unwrap_err().contains("not conserved"));
        let unknown = "{\"type\":\"attrib\",\"frame\":0,\"total\":5,\"stages\":{\"mystery\":5}}";
        assert!(check_line(unknown).unwrap_err().contains("mystery"));
        // ssim_baseline rides outside the conservation sum.
        let side = "{\"type\":\"attrib\",\"frame\":0,\"total\":10,\"stages\":{\"setup\":10,\"ssim_baseline\":77}}";
        assert!(check_line(side).is_ok());
    }

    #[test]
    fn temporal_lines_validate() {
        let good = "{\"type\":\"temporal\",\"frame\":3,\"reused\":40,\"repredicted\":2,\"rerendered\":6,\"reuse_cycles\":1280}";
        assert!(check_line(good).is_ok());
        let empty = "{\"type\":\"temporal\",\"frame\":3,\"reused\":0,\"repredicted\":0,\"rerendered\":0,\"reuse_cycles\":0}";
        assert!(check_line(empty).unwrap_err().contains("no tiles"));
        let missing = "{\"type\":\"temporal\",\"frame\":3,\"reused\":1}";
        assert!(check_line(missing).is_err());
    }

    #[test]
    fn span_id_parent_pairs_validate() {
        let tree = "{\"type\":\"span\",\"frame\":0,\"name\":\"raster::tile\",\"track\":\"cluster0\",\"tid\":1,\"start\":10,\"end\":30,\"dur\":20,\"id\":4294967297,\"parent\":0}";
        assert!(check_line(tree).is_ok());
        let zero_id = "{\"type\":\"span\",\"frame\":0,\"name\":\"x\",\"track\":\"cluster0\",\"tid\":1,\"start\":0,\"end\":1,\"dur\":1,\"id\":0,\"parent\":0}";
        assert!(check_line(zero_id).unwrap_err().contains(">= 1"));
        let orphan_parent = "{\"type\":\"span\",\"frame\":0,\"name\":\"x\",\"track\":\"cluster0\",\"tid\":1,\"start\":0,\"end\":1,\"dur\":1,\"parent\":3}";
        assert!(check_line(orphan_parent)
            .unwrap_err()
            .contains("without \"id\""));
    }

    #[test]
    fn slo_burn_events_validate() {
        let good = "{\"type\":\"event\",\"frame\":0,\"cycle\":900,\"cluster\":0,\"tile\":0,\"kind\":\"slo_burn\",\"slo\":\"slo::miss::interactive\",\"burn_x1000\":12000}";
        assert!(check_line(good).is_ok());
        let missing = "{\"type\":\"event\",\"frame\":0,\"cycle\":900,\"cluster\":0,\"tile\":0,\"kind\":\"slo_burn\"}";
        assert!(check_line(missing).is_err());
    }

    #[test]
    fn check_stream_reports_line_number() {
        let good = "{\"type\":\"frame\",\"frame\":0,\"policy\":\"p\",\"seed\":0,\"level\":\"off\"}";
        let stream = format!("{good}\nnot json\n");
        let (line, _) = check_stream(&stream).unwrap_err();
        assert_eq!(line, 2);
    }
}
