//! The JSONL telemetry schema checker.
//!
//! Every line the sink emits is a self-contained JSON object with a
//! `"type"` discriminator; [`check_line`] validates the required keys and
//! key types for each line kind. CI runs this over a smoke render's output
//! (the `trace_check` bench binary), and the determinism test runs it over
//! everything it emits — so the writer in [`crate::sink`] cannot drift from
//! the documented format unnoticed.

use crate::json::{self, Json};

/// The line types the sink emits. `"serve"` lines come from the
/// `patu-serve` layer's per-job log rather than the frame sink, but share
/// the stream format so one checker covers both.
pub const LINE_TYPES: [&str; 7] = ["frame", "counter", "hist", "span", "event", "dump", "serve"];

fn require_num(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing or non-numeric \"{key}\""))
}

fn require_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))
}

fn require_bool(obj: &Json, key: &str) -> Result<bool, String> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing or non-boolean \"{key}\""))
}

fn check_event_fields(obj: &Json) -> Result<(), String> {
    require_num(obj, "frame")?;
    require_num(obj, "cycle")?;
    require_num(obj, "cluster")?;
    require_num(obj, "tile")?;
    let kind = require_str(obj, "kind")?;
    match kind {
        "tile_begin" | "tile_end" | "watchdog_trip" => Ok(()),
        "fault" => {
            require_str(obj, "site")?;
            require_num(obj, "count")?;
            Ok(())
        }
        "fallback" => {
            require_num(obj, "count")?;
            Ok(())
        }
        other => Err(format!("unknown event kind \"{other}\"")),
    }
}

/// Validates one JSONL telemetry line.
///
/// # Errors
///
/// Returns a description of the first problem: unparseable JSON, a missing
/// `"type"`, an unknown type, or a missing/mistyped required key.
pub fn check_line(line: &str) -> Result<(), String> {
    let obj = json::parse(line)?;
    let line_type = require_str(&obj, "type")?.to_string();
    match line_type.as_str() {
        "frame" => {
            require_num(&obj, "frame")?;
            require_str(&obj, "policy")?;
            require_num(&obj, "seed")?;
            let level = require_str(&obj, "level")?;
            if !matches!(level, "off" | "counters" | "spans") {
                return Err(format!("unknown trace level \"{level}\""));
            }
            Ok(())
        }
        "counter" => {
            require_num(&obj, "frame")?;
            require_str(&obj, "name")?;
            require_num(&obj, "value")?;
            Ok(())
        }
        "hist" => {
            require_num(&obj, "frame")?;
            require_str(&obj, "name")?;
            let count = require_num(&obj, "count")?;
            require_num(&obj, "sum")?;
            require_num(&obj, "min")?;
            require_num(&obj, "max")?;
            let p50 = require_num(&obj, "p50")?;
            let p95 = require_num(&obj, "p95")?;
            let p99 = require_num(&obj, "p99")?;
            if count > 0.0 && !(p50 <= p95 && p95 <= p99) {
                return Err(format!(
                    "quantiles out of order: p50={p50} p95={p95} p99={p99}"
                ));
            }
            let buckets = obj
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| "missing or non-array \"buckets\"".to_string())?;
            for (i, bucket) in buckets.iter().enumerate() {
                let pair = bucket
                    .as_arr()
                    .filter(|p| p.len() == 2 && p.iter().all(|v| v.as_num().is_some()))
                    .ok_or_else(|| format!("bucket {i} is not a [lower, count] pair"))?;
                if pair[1].as_num() == Some(0.0) {
                    return Err(format!("bucket {i} has zero count (must be elided)"));
                }
            }
            Ok(())
        }
        "span" => {
            require_num(&obj, "frame")?;
            require_str(&obj, "name")?;
            require_str(&obj, "track")?;
            require_num(&obj, "tid")?;
            let start = require_num(&obj, "start")?;
            let end = require_num(&obj, "end")?;
            let dur = require_num(&obj, "dur")?;
            if end >= start && dur != end - start {
                return Err(format!("dur {dur} != end {end} - start {start}"));
            }
            Ok(())
        }
        "event" => check_event_fields(&obj),
        "serve" => {
            require_num(&obj, "job")?;
            require_num(&obj, "client")?;
            require_num(&obj, "tier")?;
            require_str(&obj, "scene")?;
            require_num(&obj, "frame")?;
            let arrival = require_num(&obj, "arrival")?;
            require_num(&obj, "deadline")?;
            let outcome = require_str(&obj, "outcome")?;
            match outcome {
                "delivered" => {
                    let finish = require_num(&obj, "finish")?;
                    if finish < arrival {
                        return Err(format!("finish {finish} before arrival {arrival}"));
                    }
                    require_num(&obj, "theta")?;
                    require_num(&obj, "ssim")?;
                    require_num(&obj, "hash")?;
                    require_num(&obj, "gpu")?;
                    require_num(&obj, "retries")?;
                    require_bool(&obj, "hedged")?;
                    Ok(())
                }
                // A job abandoned by the resilience layer: its per-tier
                // retry budget ran out, or no remaining retry could meet
                // the deadline.
                "failed" => {
                    let finish = require_num(&obj, "finish")?;
                    if finish < arrival {
                        return Err(format!("finish {finish} before arrival {arrival}"));
                    }
                    require_num(&obj, "retries")?;
                    Ok(())
                }
                "shed" => Ok(()),
                other => Err(format!("unknown serve outcome \"{other}\"")),
            }
        }
        "dump" => {
            require_str(&obj, "reason")?;
            require_num(&obj, "frame")?;
            require_num(&obj, "cluster")?;
            require_num(&obj, "tile")?;
            require_num(&obj, "cycle")?;
            require_str(&obj, "policy")?;
            require_num(&obj, "seed")?;
            let events = obj
                .get("events")
                .and_then(Json::as_arr)
                .ok_or_else(|| "missing or non-array \"events\"".to_string())?;
            for (i, event) in events.iter().enumerate() {
                check_event_fields(event).map_err(|e| format!("dump event {i}: {e}"))?;
            }
            Ok(())
        }
        other => Err(format!("unknown line type \"{other}\"")),
    }
}

/// Validates a whole JSONL stream, returning `(line number, error)` for the
/// first bad line (1-based), or the number of valid lines.
///
/// # Errors
///
/// See [`check_line`]; blank lines are rejected too.
pub fn check_stream(stream: &str) -> Result<usize, (usize, String)> {
    let mut checked = 0usize;
    for (i, line) in stream.lines().enumerate() {
        check_line(line).map_err(|e| (i + 1, e))?;
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, FrameTelemetry};
    use crate::config::{TelemetryConfig, TraceLevel};
    use crate::sink;
    use crate::span::{Event, EventKind, Track};

    #[test]
    fn sink_output_passes_the_checker() {
        let mut frame = FrameTelemetry::new(TraceLevel::Spans, 1, "Patu".into(), 11);
        let mut c = Collector::new(
            TelemetryConfig::with_level(TraceLevel::Spans),
            Track::Cluster(1),
        );
        c.span_arg("raster::tile", 0, 64, "tile", 9);
        c.add("pixels", 256);
        c.record("texture::filter_latency", 17);
        c.event(Event {
            cycle: 3,
            cluster: 1,
            tile: 9,
            kind: EventKind::WatchdogTrip,
        });
        c.event(Event {
            cycle: 5,
            cluster: 1,
            tile: 9,
            kind: EventKind::Fallback { count: 4 },
        });
        c.dump("watchdog_trip", 6, 9);
        frame.absorb(c);
        let stream = sink::jsonl(&[frame]);
        let checked = check_stream(&stream).expect("all lines valid");
        assert!(
            checked >= 6,
            "frame+counter+hist+span+2 events+dump, got {checked}"
        );
    }

    #[test]
    fn rejects_missing_keys() {
        assert!(check_line("{\"type\":\"frame\",\"frame\":0}").is_err());
        assert!(check_line("{\"type\":\"counter\",\"frame\":0,\"name\":\"x\"}").is_err());
        assert!(check_line("{\"frame\":0}").is_err(), "no type");
        assert!(check_line("{\"type\":\"mystery\"}").is_err());
        assert!(check_line("not json").is_err());
    }

    #[test]
    fn rejects_inconsistent_spans_and_hists() {
        let bad_span = "{\"type\":\"span\",\"frame\":0,\"name\":\"x\",\"track\":\"cluster0\",\"tid\":1,\"start\":10,\"end\":30,\"dur\":5}";
        assert!(check_line(bad_span).unwrap_err().contains("dur"));
        let bad_hist = "{\"type\":\"hist\",\"frame\":0,\"name\":\"x\",\"count\":4,\"sum\":10,\"min\":1,\"max\":9,\"mean\":2.5,\"p50\":8,\"p95\":4,\"p99\":9,\"buckets\":[[1,4]]}";
        assert!(check_line(bad_hist).unwrap_err().contains("quantiles"));
    }

    #[test]
    fn rejects_unknown_event_kind() {
        let line = "{\"type\":\"event\",\"frame\":0,\"cycle\":1,\"cluster\":0,\"tile\":0,\"kind\":\"explosion\"}";
        assert!(check_line(line).unwrap_err().contains("explosion"));
    }

    #[test]
    fn serve_lines_validate() {
        let delivered = "{\"type\":\"serve\",\"job\":3,\"client\":1,\"tier\":0,\"scene\":\"oblivion\",\"frame\":2,\"arrival\":100,\"deadline\":900,\"outcome\":\"delivered\",\"finish\":400,\"theta\":0.4,\"ssim\":0.97,\"hash\":123456,\"gpu\":1,\"retries\":0,\"hedged\":false}";
        assert!(check_line(delivered).is_ok());
        let shed = "{\"type\":\"serve\",\"job\":4,\"client\":2,\"tier\":1,\"scene\":\"crysis\",\"frame\":0,\"arrival\":150,\"deadline\":950,\"outcome\":\"shed\"}";
        assert!(check_line(shed).is_ok());
        let backwards = "{\"type\":\"serve\",\"job\":5,\"client\":0,\"tier\":0,\"scene\":\"x\",\"frame\":0,\"arrival\":500,\"deadline\":900,\"outcome\":\"delivered\",\"finish\":400,\"theta\":0.4,\"ssim\":0.9,\"hash\":1,\"gpu\":0,\"retries\":0,\"hedged\":false}";
        assert!(check_line(backwards)
            .unwrap_err()
            .contains("before arrival"));
        let unknown = "{\"type\":\"serve\",\"job\":5,\"client\":0,\"tier\":0,\"scene\":\"x\",\"frame\":0,\"arrival\":1,\"deadline\":2,\"outcome\":\"vaporized\"}";
        assert!(check_line(unknown).unwrap_err().contains("vaporized"));
        let missing = "{\"type\":\"serve\",\"job\":5,\"outcome\":\"shed\"}";
        assert!(check_line(missing).is_err());
    }

    #[test]
    fn serve_resilience_fields_validate() {
        let hedged = "{\"type\":\"serve\",\"job\":7,\"client\":1,\"tier\":0,\"scene\":\"doom3\",\"frame\":1,\"arrival\":100,\"deadline\":500,\"outcome\":\"delivered\",\"finish\":300,\"theta\":0.75,\"ssim\":0.95,\"hash\":99,\"gpu\":2,\"retries\":1,\"hedged\":true}";
        assert!(check_line(hedged).is_ok());
        let no_gpu = "{\"type\":\"serve\",\"job\":7,\"client\":1,\"tier\":0,\"scene\":\"doom3\",\"frame\":1,\"arrival\":100,\"deadline\":500,\"outcome\":\"delivered\",\"finish\":300,\"theta\":0.75,\"ssim\":0.95,\"hash\":99,\"retries\":1,\"hedged\":true}";
        assert!(check_line(no_gpu).unwrap_err().contains("gpu"));
        let hedged_num = "{\"type\":\"serve\",\"job\":7,\"client\":1,\"tier\":0,\"scene\":\"doom3\",\"frame\":1,\"arrival\":100,\"deadline\":500,\"outcome\":\"delivered\",\"finish\":300,\"theta\":0.75,\"ssim\":0.95,\"hash\":99,\"gpu\":2,\"retries\":1,\"hedged\":1}";
        assert!(check_line(hedged_num).unwrap_err().contains("boolean"));
        let failed = "{\"type\":\"serve\",\"job\":8,\"client\":0,\"tier\":1,\"scene\":\"hl2\",\"frame\":0,\"arrival\":100,\"deadline\":400,\"outcome\":\"failed\",\"finish\":900,\"retries\":2}";
        assert!(check_line(failed).is_ok());
        let failed_backwards = "{\"type\":\"serve\",\"job\":8,\"client\":0,\"tier\":1,\"scene\":\"hl2\",\"frame\":0,\"arrival\":1000,\"deadline\":1400,\"outcome\":\"failed\",\"finish\":900,\"retries\":2}";
        assert!(check_line(failed_backwards)
            .unwrap_err()
            .contains("before arrival"));
        let failed_missing = "{\"type\":\"serve\",\"job\":8,\"client\":0,\"tier\":1,\"scene\":\"hl2\",\"frame\":0,\"arrival\":100,\"deadline\":400,\"outcome\":\"failed\",\"finish\":900}";
        assert!(check_line(failed_missing).unwrap_err().contains("retries"));
    }

    #[test]
    fn check_stream_reports_line_number() {
        let good = "{\"type\":\"frame\",\"frame\":0,\"policy\":\"p\",\"seed\":0,\"level\":\"off\"}";
        let stream = format!("{good}\nnot json\n");
        let (line, _) = check_stream(&stream).unwrap_err();
        assert_eq!(line, 2);
    }
}
