//! Perceptual debug artifacts: PPM heatmaps gated by `PATU_OBS_DUMP`.
//!
//! When `PATU_OBS_DUMP=<dir>` is set, telemetry-aware drivers write
//! per-frame SSIM-error heatmaps and demotion-decision maps into `<dir>`
//! as binary PPMs for eyeballing where approximation error concentrates.
//! This module owns the knob (the only reader, see patu-lint's
//! `ENV_KNOBS`) plus the deterministic color ramp and image plumbing; the
//! drivers own the data.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The dump directory from `PATU_OBS_DUMP`, or `None` when the knob is
/// unset or blank. This is the knob's only reader.
pub fn obs_dump_dir() -> Option<PathBuf> {
    match std::env::var("PATU_OBS_DUMP") {
        Ok(dir) if !dir.trim().is_empty() => Some(PathBuf::from(dir.trim())),
        _ => None,
    }
}

/// Maps an intensity in `[0, 1000]` (fixed-point ×1000) onto a cold→hot
/// ramp: deep blue → cyan → green → yellow → red. Pure integer math, so
/// dumps are byte-identical everywhere.
pub fn heat_color(t_x1000: u64) -> [u8; 3] {
    let t = t_x1000.min(1000);
    let f = ((t % 250) * 255 / 250) as u8;
    match t / 250 {
        0 => [0, f, 255],
        1 => [0, 255, 255 - f],
        2 => [f, 255, 0],
        3 => [255, 255 - f, 0],
        _ => [255, 0, 0],
    }
}

/// Writes a binary PPM (`P6`). `pixels` is row-major, `width * height`
/// entries; the parent directory is created if missing.
pub fn write_ppm(path: &Path, width: usize, height: usize, pixels: &[[u8; 3]]) -> io::Result<()> {
    if pixels.len() != width * height {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "pixel buffer does not match dimensions",
        ));
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = Vec::with_capacity(20 + pixels.len() * 3);
    out.extend_from_slice(format!("P6\n{width} {height}\n255\n").as_bytes());
    for px in pixels {
        out.extend_from_slice(px);
    }
    let mut file = fs::File::create(path)?;
    file.write_all(&out)
}

/// A tile-resolution image: one `cell × cell` pixel block per tile, for
/// demotion-decision maps and other per-tile overlays.
#[derive(Debug, Clone)]
pub struct TileGrid {
    tiles_x: usize,
    tiles_y: usize,
    cell: usize,
    pixels: Vec<[u8; 3]>,
}

impl TileGrid {
    /// A black grid of `tiles_x × tiles_y` tiles rendered at `cell` pixels
    /// per tile edge (clamped to at least 1).
    pub fn new(tiles_x: usize, tiles_y: usize, cell: usize) -> TileGrid {
        let cell = cell.max(1);
        TileGrid {
            tiles_x,
            tiles_y,
            cell,
            pixels: vec![[0, 0, 0]; tiles_x * cell * tiles_y * cell],
        }
    }

    /// Paints the whole block of tile `(tx, ty)`; out-of-range tiles are
    /// ignored.
    pub fn paint(&mut self, tx: usize, ty: usize, color: [u8; 3]) {
        if tx >= self.tiles_x || ty >= self.tiles_y {
            return;
        }
        let width = self.tiles_x * self.cell;
        for dy in 0..self.cell {
            let row = (ty * self.cell + dy) * width + tx * self.cell;
            for dx in 0..self.cell {
                self.pixels[row + dx] = color;
            }
        }
    }

    /// Writes the grid as a PPM.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        write_ppm(
            path,
            self.tiles_x * self.cell,
            self.tiles_y * self.cell,
            &self.pixels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heat_ramp_endpoints_and_monotone_red() {
        assert_eq!(heat_color(0), [0, 0, 255]);
        assert_eq!(heat_color(1000), [255, 0, 0]);
        assert_eq!(heat_color(2000), [255, 0, 0], "clamps above 1000");
        // Red channel never decreases along the ramp.
        let mut last_red = 0u8;
        for t in (0..=1000).step_by(50) {
            let [r, _, _] = heat_color(t);
            assert!(r >= last_red, "red regressed at t={t}");
            last_red = r;
        }
    }

    #[test]
    fn ppm_writes_header_and_payload() {
        let dir = std::env::temp_dir().join("patu-obs-dump-test");
        let path = dir.join("t.ppm");
        let pixels = vec![[1, 2, 3], [4, 5, 6]];
        write_ppm(&path, 2, 1, &pixels).unwrap();
        let bytes = fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n2 1\n255\n"));
        assert!(bytes.ends_with(&[1, 2, 3, 4, 5, 6]));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn ppm_rejects_mismatched_dimensions() {
        let path = std::env::temp_dir().join("patu-obs-dump-bad.ppm");
        assert!(write_ppm(&path, 3, 3, &[[0, 0, 0]]).is_err());
    }

    #[test]
    fn tile_grid_paints_blocks() {
        let mut grid = TileGrid::new(2, 2, 2);
        grid.paint(1, 0, [9, 9, 9]);
        grid.paint(7, 7, [1, 1, 1]); // ignored
        let path = std::env::temp_dir().join("patu-obs-grid.ppm");
        grid.write(&path).unwrap();
        let bytes = fs::read(&path).unwrap();
        // 4x4 image; pixel (2,0) belongs to tile (1,0).
        let header = b"P6\n4 4\n255\n".len();
        assert_eq!(&bytes[header + 2 * 3..header + 2 * 3 + 3], &[9, 9, 9]);
        assert_eq!(&bytes[header..header + 3], &[0, 0, 0]);
        let _ = fs::remove_file(&path);
    }
}
