//! Telemetry sinks: per-frame JSONL, Chrome Trace Event Format, and the
//! human-readable run report.
//!
//! All three render from the same merged [`FrameTelemetry`] in fixed field
//! and record order, so each artifact is byte-identical whenever the merged
//! telemetry is — which the collector discipline guarantees across thread
//! counts.

use crate::collect::FrameTelemetry;
use crate::json::{escape, num};
use crate::recorder::FlightDump;
use crate::report::Table;
use crate::span::{Event, EventKind, Span};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn event_fields(frame: u32, e: &Event) -> String {
    let mut out = format!(
        "\"frame\":{frame},\"cycle\":{},\"cluster\":{},\"tile\":{},\"kind\":\"{}\"",
        e.cycle,
        e.cluster,
        e.tile,
        e.kind.label()
    );
    match e.kind {
        EventKind::Fault { site, count } => {
            let _ = write!(out, ",\"site\":\"{}\",\"count\":{count}", escape(site));
        }
        EventKind::Fallback { count } => {
            let _ = write!(out, ",\"count\":{count}");
        }
        EventKind::SloBurn { slo, burn_x1000 } => {
            let _ = write!(
                out,
                ",\"slo\":\"{}\",\"burn_x1000\":{burn_x1000}",
                escape(slo)
            );
        }
        EventKind::TileBegin | EventKind::TileEnd | EventKind::WatchdogTrip => {}
    }
    out
}

fn span_line(frame: u32, s: &Span) -> String {
    let mut line = format!(
        "{{\"type\":\"span\",\"frame\":{frame},\"name\":\"{}\",\"track\":\"{}\",\"tid\":{},\"start\":{},\"end\":{},\"dur\":{}",
        escape(s.name),
        s.track.name(),
        s.track.tid(),
        s.start,
        s.end,
        s.duration()
    );
    if !s.arg_name.is_empty() {
        let _ = write!(line, ",\"args\":{{\"{}\":{}}}", escape(s.arg_name), s.arg);
    }
    // Tree spans carry their causal links; flat (legacy) spans omit them so
    // pre-existing artifacts keep their exact shape.
    if s.id != 0 {
        let _ = write!(line, ",\"id\":{},\"parent\":{}", s.id, s.parent);
    }
    line.push('}');
    line
}

fn dump_line(d: &FlightDump) -> String {
    let mut line = format!(
        "{{\"type\":\"dump\",\"reason\":\"{}\",\"frame\":{},\"cluster\":{},\"tile\":{},\"cycle\":{},\"policy\":\"{}\",\"seed\":{},\"events\":[",
        escape(d.reason),
        d.frame,
        d.cluster,
        d.tile,
        d.cycle,
        escape(&d.policy),
        d.fault_seed
    );
    for (i, e) in d.events.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "{{{}}}", event_fields(d.frame, e));
    }
    line.push_str("]}");
    line
}

/// Serializes one frame's telemetry as JSONL: a `frame` header line, then
/// counters, histograms, spans, flight-recorder events and dumps — each a
/// self-contained JSON object, in a fixed deterministic order.
pub fn jsonl_frame(t: &FrameTelemetry) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"frame\",\"frame\":{},\"policy\":\"{}\",\"seed\":{},\"level\":\"{}\"}}",
        t.frame,
        escape(&t.policy),
        t.fault_seed,
        t.level.name()
    );
    for (name, value) in &t.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"frame\":{},\"name\":\"{}\",\"value\":{value}}}",
            t.frame,
            escape(name)
        );
    }
    for (name, hist) in &t.hists {
        let mut line = format!(
            "{{\"type\":\"hist\",\"frame\":{},\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            t.frame,
            escape(name),
            hist.count(),
            hist.sum(),
            hist.min(),
            hist.max(),
            num(hist.mean()),
            hist.p50(),
            hist.p95(),
            hist.p99()
        );
        for (i, (lo, count)) in hist.nonzero_buckets().into_iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "[{lo},{count}]");
        }
        line.push_str("]}");
        let _ = writeln!(out, "{line}");
    }
    if !t.attrib.is_empty() {
        let _ = writeln!(out, "{}", t.attrib.jsonl_line(t.frame));
    }
    for span in &t.spans {
        let _ = writeln!(out, "{}", span_line(t.frame, span));
    }
    for event in &t.events {
        let _ = writeln!(
            out,
            "{{\"type\":\"event\",{}}}",
            event_fields(t.frame, event)
        );
    }
    for dump in &t.dumps {
        let _ = writeln!(out, "{}", dump_line(dump));
    }
    out
}

/// Serializes a run (several frames) as one JSONL stream, frame order
/// preserved.
pub fn jsonl(frames: &[FrameTelemetry]) -> String {
    frames.iter().map(jsonl_frame).collect()
}

/// Serializes spans as a Chrome Trace Event Format document: open the file
/// in `chrome://tracing` or <https://ui.perfetto.dev>. Each [`Track`]
/// becomes a named "thread"; timestamps are simulated cycles (the `ts`
/// unit, nominally microseconds, is irrelevant for relative inspection).
pub fn chrome_trace(frames: &[FrameTelemetry]) -> String {
    let mut tracks: BTreeMap<u32, String> = BTreeMap::new();
    // Tree-span index for causal flow arrows: id -> (tid, start cycle).
    let mut by_id: BTreeMap<u64, (u32, u64)> = BTreeMap::new();
    for t in frames {
        for span in &t.spans {
            tracks
                .entry(span.track.tid())
                .or_insert_with(|| span.track.name());
            if span.id != 0 {
                by_id
                    .entry(span.id)
                    .or_insert((span.track.tid(), span.start));
            }
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for (tid, name) in &tracks {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
    }
    for t in frames {
        for span in &t.spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"sim\",\"args\":{{\"frame\":{}",
                span.track.tid(),
                span.start,
                span.duration(),
                escape(span.name),
                t.frame
            );
            if !span.arg_name.is_empty() {
                let _ = write!(out, ",\"{}\":{}", escape(span.arg_name), span.arg);
            }
            out.push_str("}}");
            // Nesting on one track is implied by ts/dur; a parent on a
            // *different* track gets an explicit flow arrow (start at the
            // parent, finish at the child's first cycle).
            if span.id != 0 && span.parent != 0 {
                if let Some(&(parent_tid, parent_start)) = by_id.get(&span.parent) {
                    if parent_tid != span.track.tid() {
                        let _ = write!(
                            out,
                            ",\n{{\"ph\":\"s\",\"pid\":0,\"tid\":{parent_tid},\"ts\":{parent_start},\"id\":{},\"name\":\"causal\",\"cat\":\"flow\"}}",
                            span.id
                        );
                        let _ = write!(
                            out,
                            ",\n{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{},\"ts\":{},\"id\":{},\"name\":\"causal\",\"cat\":\"flow\"}}",
                            span.track.tid(),
                            span.start,
                            span.id
                        );
                    }
                }
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders a frame's human-readable report: stage-time tree, histogram
/// quantiles, counters, and any flight-recorder dumps.
pub fn report(t: &FrameTelemetry) -> String {
    let mut out = format!(
        "== telemetry: frame {} | policy {} | seed {} | level {} ==\n",
        t.frame,
        t.policy,
        t.fault_seed,
        t.level.name()
    );

    let stages = t.stage_totals();
    if !stages.is_empty() {
        out.push_str("\nstage-time tree (cycles are per-track sums; clusters overlap):\n");
        let mut table = Table::new(&["stage", "spans", "cycles"]);
        for (name, count, cycles) in stages {
            let depth = name.matches("::").count();
            let label = format!("{}{}", "  ".repeat(depth), name);
            table.row(&[label, count.to_string(), cycles.to_string()]);
        }
        out.push_str(&table.render());
    }

    if !t.attrib.is_empty() {
        let _ = write!(
            out,
            "\ncycle attribution (critical path; {} cycles conserved):\n",
            t.attrib.frame_total()
        );
        out.push_str(&t.attrib.table().render());
    }

    if !t.hists.is_empty() {
        out.push_str("\nhistograms (cycles / counts, log2 buckets):\n");
        let mut table = Table::new(&["name", "count", "mean", "p50", "p95", "p99", "max"]);
        for (name, h) in &t.hists {
            table.row(&[
                (*name).to_string(),
                h.count().to_string(),
                format!("{:.1}", h.mean()),
                h.p50().to_string(),
                h.p95().to_string(),
                h.p99().to_string(),
                h.max().to_string(),
            ]);
        }
        out.push_str(&table.render());
    }

    if !t.counters.is_empty() {
        out.push_str("\ncounters:\n");
        let mut table = Table::new(&["name", "value"]);
        for (name, value) in &t.counters {
            table.row(&[(*name).to_string(), value.to_string()]);
        }
        out.push_str(&table.render());
    }

    for dump in &t.dumps {
        out.push_str(&render_dump(dump));
    }
    out
}

/// Renders one flight-recorder dump as human-readable text.
pub fn render_dump(d: &FlightDump) -> String {
    let mut out = format!(
        "\n!! flight recorder: {} | frame {} tile {} cluster {} cycle {} | policy {} | fault seed {}\n",
        d.reason, d.frame, d.tile, d.cluster, d.cycle, d.policy, d.fault_seed
    );
    let mut table = Table::new(&["cycle", "cluster", "tile", "event"]);
    for e in &d.events {
        let what = match e.kind {
            EventKind::Fault { site, count } => format!("fault {site} x{count}"),
            EventKind::Fallback { count } => format!("fallback x{count}"),
            kind => kind.label().to_string(),
        };
        table.row(&[
            e.cycle.to_string(),
            e.cluster.to_string(),
            e.tile.to_string(),
            what,
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Writes a run's artifacts into `dir` (created if missing): a combined
/// `<name>.jsonl` event stream and `<name>.trace.json` Chrome trace.
/// Returns the written paths.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifacts(
    dir: &Path,
    name: &str,
    frames: &[FrameTelemetry],
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let jsonl_path = dir.join(format!("{name}.jsonl"));
    std::fs::write(&jsonl_path, jsonl(frames))?;
    let trace_path = dir.join(format!("{name}.trace.json"));
    std::fs::write(&trace_path, chrome_trace(frames))?;
    Ok(vec![jsonl_path, trace_path])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::Collector;
    use crate::config::{TelemetryConfig, TraceLevel};
    use crate::json;
    use crate::span::Track;

    fn sample_frame() -> FrameTelemetry {
        let mut frame = FrameTelemetry::new(TraceLevel::Spans, 2, "Patu { t: 0.4 }".into(), 7);
        let mut c = Collector::new(
            TelemetryConfig::with_level(TraceLevel::Spans),
            Track::Cluster(0),
        );
        c.span_arg("raster::tile", 10, 50, "tile", 3);
        c.add("events::texel_fetches", 123);
        c.record("texture::filter_latency", 40);
        c.event(Event {
            cycle: 12,
            cluster: 0,
            tile: 3,
            kind: EventKind::TileBegin,
        });
        c.event(Event {
            cycle: 44,
            cluster: 0,
            tile: 3,
            kind: EventKind::Fault {
                site: "dram_stalls",
                count: 2,
            },
        });
        c.dump("fault_fallback", 50, 3);
        frame.absorb(c);
        frame
    }

    #[test]
    fn every_jsonl_line_parses() {
        let frame = sample_frame();
        let stream = jsonl(&[frame]);
        assert!(stream.lines().count() >= 5);
        for line in stream.lines() {
            json::parse(line).unwrap_or_else(|e| panic!("line {line:?}: {e}"));
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_thread_names() {
        let frame = sample_frame();
        let doc = chrome_trace(&[frame]);
        let parsed = json::parse(&doc).expect("valid trace json");
        let events = parsed
            .get("traceEvents")
            .and_then(json::Json::as_arr)
            .unwrap();
        assert!(events.len() >= 2, "metadata + span");
        let metas: Vec<&json::Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 1, "one track in use");
        let spans: Vec<&json::Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans[0].get("dur").and_then(json::Json::as_num), Some(40.0));
    }

    #[test]
    fn report_names_the_offender() {
        let frame = sample_frame();
        let text = report(&frame);
        assert!(text.contains("fault_fallback"));
        assert!(text.contains("frame 2 tile 3 cluster 0"));
        assert!(text.contains("fault seed 7"));
        assert!(text.contains("raster::tile"));
        assert!(text.contains("texture::filter_latency"));
    }

    #[test]
    fn tree_spans_emit_ids_and_cross_track_flows() {
        use crate::attrib::{Attribution, Stage};
        let mut frame = FrameTelemetry::new(TraceLevel::Spans, 0, "Patu".into(), 0);
        let mut serve =
            Collector::new(TelemetryConfig::with_level(TraceLevel::Spans), Track::Serve);
        let job = serve.span_node("serve::job", 0, 500, 0, "job", 1);
        let mut cluster = Collector::new(
            TelemetryConfig::with_level(TraceLevel::Spans),
            Track::Cluster(0),
        );
        cluster.span_node("raster::tile", 100, 400, job, "tile", 0);
        frame.absorb(serve);
        frame.absorb(cluster);
        let mut attrib = Attribution::new();
        attrib.add(Stage::Setup, 100);
        attrib.add(Stage::Shade, 300);
        frame.attrib = attrib;

        let stream = jsonl_frame(&frame);
        let lines: Vec<&str> = stream.lines().collect();
        assert!(lines
            .iter()
            .any(|l| l.contains("\"type\":\"attrib\"") && l.contains("\"total\":400")));
        let tree_span = lines
            .iter()
            .find(|l| l.contains("raster::tile"))
            .expect("tree span serialized");
        assert!(tree_span.contains(&format!("\"parent\":{job}")));
        for line in &lines {
            json::parse(line).unwrap_or_else(|e| panic!("line {line:?}: {e}"));
        }

        let doc = chrome_trace(&[frame.clone()]);
        json::parse(&doc).expect("valid trace json");
        assert!(doc.contains("\"ph\":\"s\""), "flow start emitted");
        assert!(doc.contains("\"ph\":\"f\""), "flow finish emitted");

        let text = report(&frame);
        assert!(text.contains("cycle attribution"));
        assert!(text.contains("shade"));
    }

    #[test]
    fn flat_spans_carry_no_id_or_flow() {
        let frame = sample_frame();
        let stream = jsonl_frame(&frame);
        assert!(!stream.contains("\"id\":"), "legacy spans stay flat");
        let doc = chrome_trace(&[frame]);
        assert!(!doc.contains("\"cat\":\"flow\""));
    }

    #[test]
    fn empty_run_serializes_cleanly() {
        let frame = FrameTelemetry::new(TraceLevel::Counters, 0, "Baseline".into(), 0);
        let stream = jsonl_frame(&frame);
        assert_eq!(stream.lines().count(), 1, "header only");
        json::parse(stream.lines().next().unwrap()).unwrap();
        let doc = chrome_trace(&[frame]);
        json::parse(&doc).unwrap();
    }

    #[test]
    fn artifacts_write_and_validate() {
        let dir = std::env::temp_dir().join(format!("patu_obs_sink_{}", std::process::id()));
        let paths = write_artifacts(&dir, "selftest", &[sample_frame()]).unwrap();
        assert_eq!(paths.len(), 2);
        for path in &paths {
            assert!(path.exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
