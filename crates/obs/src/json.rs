//! Hand-rolled JSON: string escaping, non-finite-safe number formatting,
//! and a minimal recursive-descent parser for validating emitted lines.
//!
//! The workspace carries no serde; every sink writes JSON by hand, and the
//! schema checker (`patu-bench`'s `trace_check`) parses it back with
//! [`parse`]. Keeping writer and reader in one module makes "everything we
//! emit must re-parse" a single-crate invariant.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Formats an `f64` as a JSON number token, or `null` when non-finite.
///
/// Rust's `{}` for `f64` prints `inf`/`NaN`, which are not JSON — a
/// zero-cycle frame's `fps()` of `+∞` must not corrupt a `BENCH_*.json`
/// artifact. The finite path uses the shortest round-trip representation.
pub fn num(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Formats an `f64` with fixed `decimals`, or `null` when non-finite.
pub fn num_fixed(value: f64, decimals: usize) -> String {
    if value.is_finite() {
        format!("{value:.decimals$}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for inclusion between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value (numbers are kept as `f64`; the telemetry schema
/// only needs magnitude checks, not 64-bit integer fidelity).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number token.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps key iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object's field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with
/// its byte offset.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid keyword at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    token
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{token}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("raw control character at byte {pos}"));
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let s = &bytes[*pos..];
                let ch_len = std::str::from_utf8(s)
                    .map_err(|e| e.to_string())?
                    .chars()
                    .next()
                    .map_or(1, char::len_utf8);
                out.push_str(std::str::from_utf8(&s[..ch_len]).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NEG_INFINITY), "null");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(2.5), "2.5");
        assert_eq!(num_fixed(f64::INFINITY, 3), "null");
        assert_eq!(num_fixed(1.23456, 2), "1.23");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn parses_what_we_emit() {
        let doc = r#"{"type":"span","name":"raster::tile","start":0,"end":120,"args":{"tile":3},"ok":true,"none":null,"list":[1,2.5,-3e2]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("span"));
        assert_eq!(v.get("end").and_then(Json::as_num), Some(120.0));
        assert_eq!(
            v.get("args")
                .and_then(|a| a.get("tile"))
                .and_then(Json::as_num),
            Some(3.0)
        );
        assert_eq!(v.get("none"), Some(&Json::Null));
        assert_eq!(
            v.get("list").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn escaped_strings_round_trip() {
        let original = "weird \"name\"\twith\nnewlines\\and\u{1}ctl";
        let doc = format!("{{\"k\":\"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("inf").is_err());
        assert!(parse("{\"a\":inf}").is_err(), "bare inf is not JSON");
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5").unwrap(), Json::Num(-12.5));
        assert_eq!(parse("[]").unwrap(), Json::Arr(Vec::new()));
    }
}
