//! Worker-private collectors and their deterministic frame-level merge.

use crate::attrib::Attribution;
use crate::config::{TelemetryConfig, TraceLevel};
use crate::hist::Log2Histogram;
use crate::recorder::{FlightDump, FlightRecorder};
use crate::span::{Event, Span, Track};
use std::collections::BTreeMap;

/// A worker-private telemetry recorder for one track (one cluster, the
/// front-end, or the analysis timeline).
///
/// Every method is level-gated: at [`TraceLevel::Off`] each call reduces to
/// one branch and touches no state, so the disabled path stays off the
/// profile. Collectors are never shared between workers — the frame-level
/// [`FrameTelemetry::absorb`] walks them in cluster order, which is what
/// makes the merged artifact independent of the thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct Collector {
    level: TraceLevel,
    track: Track,
    spans: Vec<Span>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Log2Histogram>,
    recorder: FlightRecorder,
    dumps: Vec<FlightDump>,
    next_span: u64,
}

impl Collector {
    /// A collector for `track` under `cfg`.
    pub fn new(cfg: TelemetryConfig, track: Track) -> Collector {
        Collector {
            level: cfg.level,
            track,
            spans: Vec::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            recorder: FlightRecorder::new(if cfg.level.counters_enabled() {
                cfg.flight_depth as usize
            } else {
                0
            }),
            dumps: Vec::new(),
            next_span: 1,
        }
    }

    /// A collector that records nothing (the `Off` fast path).
    pub fn disabled(track: Track) -> Collector {
        Collector::new(TelemetryConfig::disabled(), track)
    }

    /// The active level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// The collector's track.
    pub fn track(&self) -> Track {
        self.track
    }

    /// Whether anything at all records (`level != Off`).
    pub fn is_enabled(&self) -> bool {
        self.level.counters_enabled()
    }

    /// Records a `[start, end)` span (only at [`TraceLevel::Spans`]).
    #[inline]
    pub fn span(&mut self, name: &'static str, start: u64, end: u64) {
        self.span_arg(name, start, end, "", 0);
    }

    /// Records a span carrying one named argument (a tile index, a work
    /// count).
    #[inline]
    pub fn span_arg(
        &mut self,
        name: &'static str,
        start: u64,
        end: u64,
        arg_name: &'static str,
        arg: u64,
    ) {
        if self.level.spans_enabled() {
            self.spans.push(Span {
                name,
                track: self.track,
                start,
                end,
                arg_name,
                arg,
                id: 0,
                parent: 0,
            });
        }
    }

    /// Records a span as a node of a causal tree and returns its
    /// deterministic id (`(tid + 1) << 32 | seq`, where `seq` counts tree
    /// spans within this collector), or 0 when spans are disabled. Pass
    /// `parent == 0` for a root. Ids are a pure function of the collector's
    /// track and call order, so merged artifacts stay byte-identical across
    /// thread counts.
    pub fn span_node(
        &mut self,
        name: &'static str,
        start: u64,
        end: u64,
        parent: u64,
        arg_name: &'static str,
        arg: u64,
    ) -> u64 {
        if !self.level.spans_enabled() {
            return 0;
        }
        let id = (u64::from(self.track.tid()) + 1) << 32 | self.next_span;
        self.next_span += 1;
        self.spans.push(Span {
            name,
            track: self.track,
            start,
            end,
            arg_name,
            arg,
            id,
            parent,
        });
        id
    }

    /// Reserves the next span id on this collector's track without
    /// recording a span — for roots whose end cycle is only known later
    /// (e.g. a job's lifecycle span, closed at its terminal outcome) while
    /// children recorded in the meantime need the parent id for causal
    /// links. Returns 0 when spans are disabled. Pair with
    /// [`Collector::span_with_id`] to record the span once it closes.
    pub fn reserve_span_id(&mut self) -> u64 {
        if !self.level.spans_enabled() {
            return 0;
        }
        let id = (u64::from(self.track.tid()) + 1) << 32 | self.next_span;
        self.next_span += 1;
        id
    }

    /// Records a span under an id previously handed out by
    /// [`Collector::reserve_span_id`]. A no-op when `id == 0` (spans
    /// disabled at reservation time), so callers can thread the reserved id
    /// unconditionally. `arg` is the span's `(name, value)` annotation.
    pub fn span_with_id(
        &mut self,
        id: u64,
        name: &'static str,
        start: u64,
        end: u64,
        parent: u64,
        arg: (&'static str, u64),
    ) {
        if id == 0 || !self.level.spans_enabled() {
            return;
        }
        self.spans.push(Span {
            name,
            track: self.track,
            start,
            end,
            arg_name: arg.0,
            arg: arg.1,
            id,
            parent,
        });
    }

    /// Adds `value` to the named counter (at `Counters` and above).
    #[inline]
    pub fn add(&mut self, name: &'static str, value: u64) {
        if self.level.counters_enabled() {
            *self.counters.entry(name).or_insert(0) += value;
        }
    }

    /// Records one sample into the named histogram (at `Counters` and
    /// above).
    #[inline]
    pub fn record(&mut self, name: &'static str, value: u64) {
        if self.level.counters_enabled() {
            self.hists.entry(name).or_default().record(value);
        }
    }

    /// Merges an externally accumulated histogram (a memory system's fetch
    /// latencies, a texture unit's queue waits) into the named slot.
    pub fn merge_hist(&mut self, name: &'static str, hist: &Log2Histogram) {
        if self.level.counters_enabled() && !hist.is_empty() {
            self.hists.entry(name).or_default().accumulate(hist);
        }
    }

    /// Appends a timeline event to the flight-recorder ring (at `Counters`
    /// and above).
    #[inline]
    pub fn event(&mut self, event: Event) {
        if self.level.counters_enabled() {
            self.recorder.push(event);
        }
    }

    /// Captures a postmortem dump of the ring as of now. The frame-level
    /// merge fills in frame/policy/seed context.
    pub fn dump(&mut self, reason: &'static str, cycle: u64, tile: u32) {
        if self.level.counters_enabled() {
            self.dumps.push(FlightDump {
                reason,
                cluster: self.track.tid().saturating_sub(1),
                tile,
                cycle,
                frame: 0,
                policy: String::new(),
                fault_seed: 0,
                events: self.recorder.snapshot(),
            });
        }
    }

    /// Number of dumps captured so far (used to trigger at-most-once dumps
    /// per cluster without extra state at the call site).
    pub fn dump_count(&self) -> usize {
        self.dumps.len()
    }
}

/// A frame's merged telemetry: the cluster-order combination of every
/// collector that participated in rendering it.
///
/// Serialization lives in [`crate::sink`]; this type is pure data plus the
/// merge discipline.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTelemetry {
    /// The level the frame was recorded at.
    pub level: TraceLevel,
    /// Frame index within the workload.
    pub frame: u32,
    /// Filtering policy label (`format!("{policy:?}")`).
    pub policy: String,
    /// Fault-injection master seed (0 when faults are disabled).
    pub fault_seed: u64,
    /// All spans, in absorb order (front-end first, then clusters in index
    /// order, then analysis) — deterministic by construction.
    pub spans: Vec<Span>,
    /// Merged named counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Merged named histograms.
    pub hists: BTreeMap<&'static str, Log2Histogram>,
    /// Flight-recorder rings of every cluster, concatenated in cluster
    /// order (oldest first within a cluster).
    pub events: Vec<Event>,
    /// Captured postmortems, enriched with frame/policy/seed context.
    pub dumps: Vec<FlightDump>,
    /// Per-stage cycle attribution for the frame (empty unless the renderer
    /// filled it in).
    pub attrib: Attribution,
}

impl FrameTelemetry {
    /// An empty frame record.
    pub fn new(level: TraceLevel, frame: u32, policy: String, fault_seed: u64) -> FrameTelemetry {
        FrameTelemetry {
            level,
            frame,
            policy,
            fault_seed,
            spans: Vec::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            events: Vec::new(),
            dumps: Vec::new(),
            attrib: Attribution::default(),
        }
    }

    /// Absorbs one collector. **Call in cluster order** — the artifact's
    /// byte-identity across thread counts rests on every absorb sequence
    /// being a pure function of the frame, not of scheduling.
    pub fn absorb(&mut self, collector: Collector) {
        let Collector {
            spans,
            counters,
            hists,
            recorder,
            dumps,
            ..
        } = collector;
        self.spans.extend(spans);
        for (name, value) in counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (name, hist) in hists {
            self.hists.entry(name).or_default().accumulate(&hist);
        }
        self.events.extend(recorder.snapshot());
        for mut dump in dumps {
            dump.frame = self.frame;
            dump.policy.clone_from(&self.policy);
            dump.fault_seed = self.fault_seed;
            self.dumps.push(dump);
        }
    }

    /// Per-stage span totals: `(name, span count, total cycles)` sorted by
    /// stage name — the report's stage-time tree. Names nest on `::`.
    pub fn stage_totals(&self) -> Vec<(&'static str, u64, u64)> {
        let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for span in &self.spans {
            let entry = totals.entry(span.name).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += span.duration();
        }
        totals
            .into_iter()
            .map(|(name, (count, cycles))| (name, count, cycles))
            .collect()
    }

    /// Whether the frame recorded nothing (the `Off` invariant).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.hists.is_empty()
            && self.events.is_empty()
            && self.dumps.is_empty()
            && self.attrib.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::EventKind;

    fn spans_cfg() -> TelemetryConfig {
        TelemetryConfig::with_level(TraceLevel::Spans)
    }

    #[test]
    fn off_records_absolutely_nothing() {
        let mut c = Collector::disabled(Track::Cluster(0));
        c.span("raster::tile", 0, 100);
        c.add("pixels", 10);
        c.record("latency", 42);
        c.event(Event {
            cycle: 1,
            cluster: 0,
            tile: 0,
            kind: EventKind::TileBegin,
        });
        c.dump("watchdog_trip", 5, 0);
        let mut frame = FrameTelemetry::new(TraceLevel::Off, 0, "p".into(), 0);
        frame.absorb(c);
        assert!(frame.is_empty());
    }

    #[test]
    fn reserved_ids_share_the_sequence_with_span_node() {
        let mut c = Collector::new(spans_cfg(), Track::Serve);
        let root = c.reserve_span_id();
        let child = c.span_node("serve::batch", 10, 20, root, "", 0);
        c.span_with_id(root, "serve::lifecycle", 0, 50, 0, ("job", 7));
        assert_ne!(root, 0);
        assert_eq!(child, root + 1);
        let mut frame = FrameTelemetry::new(TraceLevel::Spans, 0, "p".into(), 0);
        frame.absorb(c);
        let life = frame
            .spans
            .iter()
            .find(|s| s.name == "serve::lifecycle")
            .unwrap();
        assert_eq!((life.id, life.parent), (root, 0));
        let batch = frame
            .spans
            .iter()
            .find(|s| s.name == "serve::batch")
            .unwrap();
        assert_eq!(batch.parent, root);
    }

    #[test]
    fn reservation_is_inert_when_spans_are_disabled() {
        let mut c = Collector::new(
            TelemetryConfig::with_level(TraceLevel::Counters),
            Track::Serve,
        );
        let id = c.reserve_span_id();
        assert_eq!(id, 0);
        c.span_with_id(id, "serve::lifecycle", 0, 50, 0, ("", 0));
        let mut frame = FrameTelemetry::new(TraceLevel::Counters, 0, "p".into(), 0);
        frame.absorb(c);
        assert!(frame.spans.is_empty());
    }

    #[test]
    fn counters_level_drops_spans_only() {
        let mut c = Collector::new(
            TelemetryConfig::with_level(TraceLevel::Counters),
            Track::Cluster(1),
        );
        c.span("raster::tile", 0, 100);
        c.add("pixels", 10);
        c.record("latency", 42);
        let mut frame = FrameTelemetry::new(TraceLevel::Counters, 0, "p".into(), 0);
        frame.absorb(c);
        assert!(frame.spans.is_empty());
        assert_eq!(frame.counters["pixels"], 10);
        assert_eq!(frame.hists["latency"].count(), 1);
    }

    #[test]
    fn absorb_merges_in_call_order() {
        let mut frame = FrameTelemetry::new(TraceLevel::Spans, 7, "PATU".into(), 42);
        for cluster in 0..3u32 {
            let mut c = Collector::new(spans_cfg(), Track::Cluster(cluster));
            c.span_arg(
                "raster::tile",
                u64::from(cluster),
                u64::from(cluster) + 10,
                "tile",
                0,
            );
            c.add("pixels", 1);
            frame.absorb(c);
        }
        assert_eq!(frame.spans.len(), 3);
        let tracks: Vec<Track> = frame.spans.iter().map(|s| s.track).collect();
        assert_eq!(
            tracks,
            vec![Track::Cluster(0), Track::Cluster(1), Track::Cluster(2)],
            "spans keep cluster order"
        );
        assert_eq!(frame.counters["pixels"], 3);
    }

    #[test]
    fn dumps_get_frame_context() {
        let mut c = Collector::new(spans_cfg(), Track::Cluster(2));
        c.event(Event {
            cycle: 9,
            cluster: 2,
            tile: 5,
            kind: EventKind::TileBegin,
        });
        c.dump("fault_fallback", 12, 5);
        assert_eq!(c.dump_count(), 1);
        let mut frame = FrameTelemetry::new(TraceLevel::Spans, 3, "PATU@0.4".into(), 99);
        frame.absorb(c);
        let dump = &frame.dumps[0];
        assert_eq!(dump.frame, 3);
        assert_eq!(dump.policy, "PATU@0.4");
        assert_eq!(dump.fault_seed, 99);
        assert_eq!(dump.cluster, 2);
        assert_eq!(dump.tile, 5);
        assert_eq!(dump.events.len(), 1);
    }

    #[test]
    fn stage_totals_aggregate_by_name() {
        let mut frame = FrameTelemetry::new(TraceLevel::Spans, 0, "p".into(), 0);
        let mut c = Collector::new(spans_cfg(), Track::Cluster(0));
        c.span("raster::tile", 0, 10);
        c.span("raster::tile", 10, 30);
        c.span("geom::frontend", 0, 5);
        frame.absorb(c);
        assert_eq!(
            frame.stage_totals(),
            vec![("geom::frontend", 1, 5), ("raster::tile", 2, 30)]
        );
    }

    #[test]
    fn span_node_ids_are_deterministic_per_track() {
        let mut c = Collector::new(spans_cfg(), Track::Cluster(1));
        let root = c.span_node("raster::tile", 0, 10, 0, "tile", 3);
        let child = c.span_node("raster::tile::shade", 0, 5, root, "", 0);
        assert_eq!(root, (3u64 << 32) | 1, "Cluster(1) has tid 2, so id base 3");
        assert_eq!(child, (3u64 << 32) | 2);
        let mut frame = FrameTelemetry::new(TraceLevel::Spans, 0, "p".into(), 0);
        frame.absorb(c);
        assert_eq!(frame.spans[1].parent, root);

        let mut off = Collector::disabled(Track::Cluster(1));
        assert_eq!(off.span_node("raster::tile", 0, 10, 0, "", 0), 0);
    }

    #[test]
    fn merge_hist_respects_level() {
        let mut h = Log2Histogram::new();
        h.record(8);
        let mut off = Collector::disabled(Track::Analysis);
        off.merge_hist("x", &h);
        let mut frame = FrameTelemetry::new(TraceLevel::Off, 0, "p".into(), 0);
        frame.absorb(off);
        assert!(frame.is_empty());
    }
}
