//! Fixed-bucket log2 histograms with deterministic quantiles.

/// Bucket count: bucket 0 holds the value 0; bucket `i` (1..=64) holds
/// values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A log2 histogram over `u64` samples (latencies, tap counts, queue
/// depths).
///
/// Everything is integer arithmetic — recording, merging and quantiles are
/// exactly reproducible and merge order cannot change any result (bucket
/// counts are commutative sums). The struct is `Copy` so it can live inside
/// `FrameStats`-style value types.
///
/// ```
/// use patu_obs::Log2Histogram;
/// let mut h = Log2Histogram::new();
/// for v in [1u64, 2, 3, 4, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.p50(), 3, "median falls in the [2,4) bucket");
/// assert_eq!(h.max(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Log2Histogram::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile at `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the rank, clamped to the observed `[min, max]`
    /// range. Resolution is the bucket width (a factor of two), which is
    /// the deliberate price of a fixed 65×8-byte footprint; the value is a
    /// pure function of the bucket counts, so it is deterministic and
    /// merge-order independent. Returns 0 when empty.
    ///
    /// The nearest rank is `ceil(q * count)`, computed with an epsilon guard:
    /// `q * count` in binary floating point can land a hair above an exact
    /// integer (`0.95 * 20 == 19.000000000000004`), and a bare `ceil` would
    /// then overshoot the rank by one.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let scaled = q.clamp(0.0, 1.0) * self.count as f64;
        let nearest = scaled.round();
        let rank = if (scaled - nearest).abs() < 1e-9 * (self.count as f64).max(1.0) {
            nearest as u64
        } else {
            scaled.ceil() as u64
        }
        .clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`Log2Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Component-wise merge (bucket sums commute, so any merge order gives
    /// the same histogram).
    pub fn accumulate(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `(bucket_lower_bound, count)` for every non-empty bucket, in
    /// ascending value order — the JSONL export shape.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket(0), 0);
        assert_eq!(Log2Histogram::bucket(1), 1);
        assert_eq!(Log2Histogram::bucket(2), 2);
        assert_eq!(Log2Histogram::bucket(3), 2);
        assert_eq!(Log2Histogram::bucket(4), 3);
        assert_eq!(Log2Histogram::bucket(u64::MAX), 64);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut h = Log2Histogram::new();
        // 90 fast samples, 10 slow ones.
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(5_000);
        }
        assert_eq!(h.count(), 100);
        assert!(h.p50() < 20, "median in the fast bucket: {}", h.p50());
        assert!(h.p95() >= 4_096, "p95 in the slow bucket: {}", h.p95());
        assert_eq!(h.max(), 5_000);
        assert_eq!(h.min(), 10);
    }

    #[test]
    fn quantile_clamps_to_observed_range() {
        let mut h = Log2Histogram::new();
        h.record(5);
        assert_eq!(h.p50(), 5, "single sample: every quantile is that sample");
        assert_eq!(h.p99(), 5);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in [1u64, 7, 900] {
            a.record(v);
        }
        for v in [3u64, 64, 12_000] {
            b.record(v);
        }
        let mut ab = a;
        ab.accumulate(&b);
        let mut ba = b;
        ba.accumulate(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 6);
        assert_eq!(ab.sum(), 1 + 7 + 900 + 3 + 64 + 12_000);
    }

    #[test]
    fn nonzero_buckets_report_lower_bounds() {
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(0, 1), (4, 2)]);
    }

    #[test]
    fn bucket_edges_at_exact_powers_of_two() {
        // A value equal to a bucket edge 2^k belongs to bucket k+1 (the
        // bucket whose range is [2^k, 2^(k+1))), and nonzero_buckets
        // reports exactly that lower bound.
        for k in 0..63u32 {
            let v = 1u64 << k;
            assert_eq!(Log2Histogram::bucket(v), k as usize + 1, "bucket(2^{k})");
            let mut h = Log2Histogram::new();
            h.record(v);
            assert_eq!(h.nonzero_buckets(), vec![(v, 1)]);
            // With one sample every quantile is that sample.
            for q in [0.0, 0.5, 0.95, 1.0] {
                assert_eq!(h.quantile(q), v, "quantile({q}) of single 2^{k}");
            }
        }
    }

    #[test]
    fn quantile_rank_is_not_fooled_by_float_rounding() {
        // 0.95 * 20 == 19.000000000000004 in f64; a bare ceil turns rank 19
        // into rank 20. With 19 fast samples and one huge outlier the two
        // ranks land in different buckets, so the bug is observable.
        let mut h = Log2Histogram::new();
        for _ in 0..19 {
            h.record(1);
        }
        h.record(1_000_000);
        assert_eq!(h.p95(), 1, "rank 19 of 20 is the last fast sample");
        assert!(h.p99() >= 524_288, "rank 20 is the outlier: {}", h.p99());
    }

    #[test]
    fn quantile_matches_nearest_rank_reference_over_detrng_sweep() {
        use patu_gmath::DetRng;
        let mut rng = DetRng::new(0x0b5e_77ab_1e5e_ed01);
        for trial in 0..200u32 {
            let n = 1 + (rng.next_u64() % 64) as usize;
            let mut samples: Vec<u64> = (0..n)
                .map(|_| {
                    let shift = rng.next_u64() % 20;
                    rng.next_u64() % (1u64 << (shift + 1))
                })
                .collect();
            let mut h = Log2Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            samples.sort_unstable();
            for &q in &[0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
                let scaled = q * n as f64;
                let nearest = scaled.round();
                let rank = if (scaled - nearest).abs() < 1e-9 * n as f64 {
                    nearest as usize
                } else {
                    scaled.ceil() as usize
                }
                .clamp(1, n);
                let reference = samples[rank - 1];
                let got = h.quantile(q);
                // The histogram answers with the containing bucket's upper
                // bound clamped to [min, max]: never below the true
                // nearest-rank value, never above its bucket's upper edge.
                let upper = if reference == 0 {
                    0
                } else {
                    ((1u64 << Log2Histogram::bucket(reference)) - 1).min(h.max())
                };
                assert!(
                    got >= reference && got <= upper.max(reference),
                    "trial {trial} q={q} n={n}: reference {reference}, got {got}, upper {upper}"
                );
            }
        }
    }

    #[test]
    fn mean_matches_samples() {
        let mut h = Log2Histogram::new();
        for v in [2u64, 4, 6] {
            h.record(v);
        }
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }
}
