//! Spans and events on the simulated-cycle timeline.

/// The timeline a span or event belongs to. Chrome-trace export lays each
/// track out as its own "thread".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// The geometry front-end (vertex processing + tile binning), shared by
    /// all clusters.
    Frontend,
    /// One shader cluster's cycle stream.
    Cluster(u32),
    /// Off-pipeline analysis work (SSIM, report generation) clocked in
    /// deterministic work units instead of GPU cycles.
    Analysis,
    /// The serving layer's job-lifecycle timeline (admit, queue, dispatch,
    /// deliver), clocked on the same virtual clock as the GPU tracks.
    Serve,
}

impl Track {
    /// A stable small integer for Chrome-trace `tid` assignment: front-end
    /// 0, clusters 1..=N, serve 500, analysis 999.
    pub fn tid(self) -> u32 {
        match self {
            Track::Frontend => 0,
            Track::Cluster(c) => c + 1,
            Track::Serve => 500,
            Track::Analysis => 999,
        }
    }

    /// Human-readable track name (the Chrome-trace thread name).
    pub fn name(self) -> String {
        match self {
            Track::Frontend => "frontend".to_string(),
            Track::Cluster(c) => format!("cluster{c}"),
            Track::Serve => "serve".to_string(),
            Track::Analysis => "analysis".to_string(),
        }
    }
}

/// A named `[start, end)` interval on a track, clocked in simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Stage name, `::`-separated for the report's stage tree (e.g.
    /// `raster::tile::texture`).
    pub name: &'static str,
    /// The timeline the span lies on.
    pub track: Track,
    /// First cycle of the interval.
    pub start: u64,
    /// One past the last cycle of the interval.
    pub end: u64,
    /// Name of the span's single argument (`""` for none).
    pub arg_name: &'static str,
    /// Argument value (tile index, item count, …).
    pub arg: u64,
    /// Deterministic span id (`(tid + 1) << 32 | seq`), or 0 for legacy
    /// flat spans that never participate in a causal tree.
    pub id: u64,
    /// Id of the causal parent span, or 0 for roots and flat spans.
    pub parent: u64,
}

impl Span {
    /// The span's duration in cycles (0 for degenerate ranges).
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// What happened at a point on the timeline — the flight recorder's and the
/// JSONL event stream's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A tile began executing on its cluster.
    TileBegin,
    /// A tile finished (shading and texturing both drained).
    TileEnd,
    /// `count` faults fired at `site` while the tile ran (site names come
    /// from `patu_gpu::FaultCounts::sites`).
    Fault {
        /// Fault-site name (e.g. `cache_bitflips`).
        site: &'static str,
        /// How many fired within the tile.
        count: u64,
    },
    /// `count` pixels fell back to the quality-safe full-AF path.
    Fallback {
        /// Fallback count within the tile.
        count: u64,
    },
    /// The per-frame cycle-budget watchdog tripped; the rest of the
    /// cluster's tile stream renders degraded.
    WatchdogTrip,
    /// An SLO burn-rate alert fired: the named objective is consuming its
    /// error budget `burn_x1000 / 1000` times faster than sustainable.
    SloBurn {
        /// The SLO's stable name (e.g. `slo::miss::interactive`).
        slo: &'static str,
        /// Fast-window burn rate, fixed-point ×1000.
        burn_x1000: u64,
    },
}

impl EventKind {
    /// The stable event-kind label used in JSONL output.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::TileBegin => "tile_begin",
            EventKind::TileEnd => "tile_end",
            EventKind::Fault { .. } => "fault",
            EventKind::Fallback { .. } => "fallback",
            EventKind::WatchdogTrip => "watchdog_trip",
            EventKind::SloBurn { .. } => "slo_burn",
        }
    }
}

/// One timeline event, tagged with the cluster and tile it happened on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// Cluster index.
    pub cluster: u32,
    /// Tile index within the frame's tile grid.
    pub tile: u32,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_tids_are_distinct() {
        assert_eq!(Track::Frontend.tid(), 0);
        assert_eq!(Track::Cluster(0).tid(), 1);
        assert_eq!(Track::Cluster(3).tid(), 4);
        assert_eq!(Track::Analysis.tid(), 999);
        assert_eq!(Track::Cluster(2).name(), "cluster2");
    }

    #[test]
    fn span_duration_saturates() {
        let s = Span {
            name: "x",
            track: Track::Frontend,
            start: 10,
            end: 4,
            arg_name: "",
            arg: 0,
            id: 0,
            parent: 0,
        };
        assert_eq!(s.duration(), 0);
    }

    #[test]
    fn serve_track_is_distinct() {
        assert_eq!(Track::Serve.tid(), 500);
        assert_eq!(Track::Serve.name(), "serve");
    }

    #[test]
    fn event_labels_are_stable() {
        assert_eq!(EventKind::TileBegin.label(), "tile_begin");
        assert_eq!(
            EventKind::Fault {
                site: "dram_stalls",
                count: 2
            }
            .label(),
            "fault"
        );
        assert_eq!(EventKind::WatchdogTrip.label(), "watchdog_trip");
        assert_eq!(
            EventKind::SloBurn {
                slo: "slo::shed",
                burn_x1000: 8000
            }
            .label(),
            "slo_burn"
        );
    }
}
