//! Chaos tour: renders the same frame under increasing fault rates and
//! shows the degradation machinery absorbing the damage — fallback
//! decisions, watchdog trips, extra refills — while quality stays a valid
//! score and the run stays deterministic for a fixed seed.
//!
//! Run with: `cargo run --release -p patu-sim --example chaos_injection`

use patu_core::FilterPolicy;
use patu_gpu::FaultConfig;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::build("doom3", (320, 256))?;
    let policy = FilterPolicy::Patu { threshold: 0.4 };

    println!("doom3 @ 320x256, PATU θ=0.4, fault seed 42\n");
    println!(
        "{:>9} {:>10} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "rate", "cycles", "injected", "flips", "stalls", "corrupt", "poisons", "fallbacks"
    );

    let clean = render_frame(&workload, 0, &RenderConfig::new(policy))?;
    for rate in [0.0, 1e-4, 1e-3, 1e-2, 1e-1] {
        let cfg = RenderConfig::new(policy).with_faults(FaultConfig::uniform(42, rate));
        let r = render_frame(&workload, 0, &cfg)?;
        let f = r.stats.faults;
        println!(
            "{:>9.0e} {:>10} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9}",
            rate,
            r.stats.cycles,
            f.faults_injected(),
            f.cache_bitflips,
            f.dram_stalls,
            f.table_corruptions,
            f.predictor_poisons,
            f.fallbacks,
        );
        if rate == 0.0 {
            assert_eq!(
                r.stats, clean.stats,
                "zero-rate injector is bit-identical to no injector"
            );
        }
    }

    // The watchdog: an absurd 1-cycle budget makes every tile after the
    // first start over budget; the frame finishes (AF off for the rest)
    // and is flagged instead of livelocking.
    let strangled = render_frame(
        &workload,
        0,
        &RenderConfig::new(policy)
            .with_faults(FaultConfig::uniform(42, 0.1))
            .with_cycle_budget(1),
    )?;
    println!(
        "\nwatchdog @ budget=1: degraded={} trips={} (frame still completed: {} cycles)",
        strangled.degraded, strangled.stats.faults.watchdog_trips, strangled.stats.cycles
    );

    // Adversarial configuration is a typed error, not a panic.
    let bad = FaultConfig {
        dram_stall_rate: 7.0,
        ..FaultConfig::disabled()
    };
    match render_frame(&workload, 0, &RenderConfig::new(policy).with_faults(bad)) {
        Err(e) => println!("bad config rejected: {e}"),
        Ok(_) => unreachable!("a 700% stall rate must not validate"),
    }
    Ok(())
}
