//! Adaptive threshold control: a proportional controller retunes PATU's
//! threshold each frame to hold a frame-cycle budget — trading exactly as
//! much quality as the scene demands, no more (extension of the paper's
//! static tuning-point analysis, Sec. VII-A/D).
//!
//! Run with: `cargo run --release -p patu-sim --example adaptive_threshold`

use patu_core::FilterPolicy;
use patu_scenes::Workload;
use patu_sim::controller::ThresholdController;
use patu_sim::render::{render_frame, RenderConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::build("grid", (480, 384))?;

    // Budget: 85% of what the full-AF baseline needs on frame 0, so the
    // controller must give up a little quality to hold it.
    let baseline = render_frame(&workload, 0, &RenderConfig::new(FilterPolicy::Baseline))?;
    let budget = baseline.stats.cycles * 85 / 100;
    let mut controller = ThresholdController::new(budget, 1.0).with_bounds(0.05, 1.0);

    println!(
        "frame budget: {budget} cycles (baseline frame 0: {})\n",
        baseline.stats.cycles
    );
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>14}",
        "frame", "theta", "cycles", "vs budget", "approximated"
    );
    for i in 0..12u32 {
        let theta = controller.threshold();
        let r = render_frame(
            &workload,
            i * 10,
            &RenderConfig::new(FilterPolicy::Patu { threshold: theta }),
        )?;
        controller.observe(r.stats.cycles);
        println!(
            "{:>6} {:>10.3} {:>12} {:>+9.1}% {:>13.1}%",
            i,
            theta,
            r.stats.cycles,
            (r.stats.cycles as f64 / budget as f64 - 1.0) * 100.0,
            r.approx.approximated_fraction() * 100.0,
        );
    }
    println!("\nsettled threshold: {:.3}", controller.threshold());
    Ok(())
}
