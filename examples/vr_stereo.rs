//! Stereo (multi-view VR) rendering: one frame rendered for both eyes,
//! comparing the baseline 16×AF against PATU. AF's texel cost doubles under
//! VR, which is exactly the regime the paper motivates PATU with.
//!
//! Run with: `cargo run --release -p patu-sim --example vr_stereo`

use patu_core::FilterPolicy;
use patu_energy::EnergyModel;
use patu_gpu::GpuConfig;
use patu_scenes::Workload;
use patu_sim::render::RenderConfig;
use patu_sim::stereo::render_stereo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::build("doom3", (480, 480))?;
    let energy = EnergyModel::default();
    let freq = GpuConfig::default().frequency_hz;
    const IPD: f32 = 0.35; // world units; the corridor is ~8 units wide

    println!("VR stereo rendering of doom3 @ 480x480 per eye...\n");
    println!(
        "{:<22} {:>14} {:>9} {:>12} {:>11}",
        "policy", "cycles (2 eyes)", "fps", "texels", "energy(mJ)"
    );

    let mut baseline_cycles = 0;
    for (label, policy) in [
        ("Baseline 16xAF", FilterPolicy::Baseline),
        (
            "PATU (threshold 0.4)",
            FilterPolicy::Patu { threshold: 0.4 },
        ),
    ] {
        let s = render_stereo(&workload, 0, &RenderConfig::new(policy), IPD)?;
        let stats = s.combined_stats();
        if baseline_cycles == 0 {
            baseline_cycles = stats.cycles;
        }
        let e = energy.frame_energy(&stats).total_joules() * 1e3;
        println!(
            "{:<22} {:>14} {:>9.1} {:>12} {:>11.3}",
            label,
            stats.cycles,
            stats.fps(freq),
            stats.events.texel_fetches,
            e
        );
    }

    let patu = render_stereo(
        &workload,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
        IPD,
    )?;
    println!(
        "\nVR speedup from PATU: {:.2}x (per-eye approximation rates: L {:.0}%, R {:.0}%)",
        baseline_cycles as f64 / patu.combined_stats().cycles as f64,
        patu.left.approx.approximated_fraction() * 100.0,
        patu.right.approx.approximated_fraction() * 100.0,
    );
    Ok(())
}
