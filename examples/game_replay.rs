//! The paper's Sec. VI analysis-layer replay: renders a short frame
//! sequence under several policies, plays it through the 60 Hz vsync model,
//! and scores each replay with the synthetic satisfaction model (Fig. 22's
//! substitute — see DESIGN.md §2).
//!
//! Run with: `cargo run --release -p patu-sim --example game_replay`

use patu_core::FilterPolicy;
use patu_quality::SsimConfig;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};
use patu_sim::replay::ReplayModel;
use patu_sim::satisfaction::SatisfactionModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let resolution = (480, 384);
    let workload = Workload::build("doom3", resolution)?;
    let frames: Vec<u32> = (0..8).map(|i| i * 40).collect();
    let replay = ReplayModel::default();
    let rater = SatisfactionModel::default();
    let ssim = SsimConfig::default();

    println!(
        "replaying {} frames of doom3 @ {}x{} through 60 Hz vsync...\n",
        frames.len(),
        resolution.0,
        resolution.1
    );

    // Baseline renders for quality reference.
    let baseline: Vec<_> = frames
        .iter()
        .map(|&f| render_frame(&workload, f, &RenderConfig::new(FilterPolicy::Baseline)))
        .collect::<Result<_, _>>()?;

    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>12}",
        "policy", "fps", "stalls", "MSSIM", "satisfaction"
    );
    for (label, policy) in [
        ("AF off (θ=0)", FilterPolicy::NoAf),
        ("PATU θ=0.2", FilterPolicy::Patu { threshold: 0.2 }),
        ("PATU θ=0.4", FilterPolicy::Patu { threshold: 0.4 }),
        ("PATU θ=0.8", FilterPolicy::Patu { threshold: 0.8 }),
        ("AF on (θ=1)", FilterPolicy::Baseline),
    ] {
        let mut cycles = Vec::new();
        let mut mssim_sum = 0.0;
        for (i, &f) in frames.iter().enumerate() {
            let r = if matches!(policy, FilterPolicy::Baseline) {
                baseline[i].clone()
            } else {
                render_frame(&workload, f, &RenderConfig::new(policy))?
            };
            mssim_sum += if matches!(policy, FilterPolicy::Baseline) {
                1.0
            } else {
                f64::from(ssim.mssim(&baseline[i].luma(), &r.luma()))
            };
            cycles.push(r.stats.cycles);
        }
        let mssim = mssim_sum / frames.len() as f64;
        let result = replay.replay(&cycles);
        let fps = result.average_fps(replay.refresh_hz);
        let score = rater.score(
            mssim,
            fps,
            u64::from(resolution.0) * u64::from(resolution.1),
        );
        println!(
            "{:<18} {:>8.1} {:>8} {:>8.3} {:>12.2}",
            label, fps, result.stalled_refreshes, mssim, score
        );
    }
    Ok(())
}
