//! Reproduces the paper's Fig. 8 visualization: one frame rendered with AF
//! enabled and disabled, plus their per-pixel SSIM index map (lighter =
//! higher similarity = AF not perceivable there).
//!
//! Writes `out/fig08_af_on.ppm`, `out/fig08_af_off.ppm` and
//! `out/fig08_ssim_map.pgm`.
//!
//! Run with: `cargo run --release -p patu-sim --example ssim_map`

use patu_core::FilterPolicy;
use patu_quality::SsimConfig;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::build("hl2", (800, 600))?;
    println!("rendering hl2 @ 800x600 with and without AF...");

    let af_on = render_frame(&workload, 0, &RenderConfig::new(FilterPolicy::Baseline))?;
    let af_off = render_frame(&workload, 0, &RenderConfig::new(FilterPolicy::NoAf))?;

    let ssim = SsimConfig::default();
    let map = ssim.ssim_map(&af_on.luma(), &af_off.luma());

    std::fs::create_dir_all("out")?;
    af_on
        .image
        .write_ppm(BufWriter::new(File::create("out/fig08_af_on.ppm")?))?;
    af_off
        .image
        .write_ppm(BufWriter::new(File::create("out/fig08_af_off.ppm")?))?;
    map.to_gray_image()
        .write_pgm(BufWriter::new(File::create("out/fig08_ssim_map.pgm")?))?;

    println!("MSSIM (AF-off vs AF-on): {:.3}", map.mean());
    for threshold in [0.5, 0.7, 0.9, 0.95] {
        println!(
            "  windows with SSIM >= {threshold}: {:>5.1}%  (non-perceivable at this tuning point)",
            map.fraction_above(threshold) * 100.0
        );
    }
    println!("wrote out/fig08_af_on.ppm, out/fig08_af_off.ppm, out/fig08_ssim_map.pgm");
    Ok(())
}
