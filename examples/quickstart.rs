//! Quickstart: render one game frame with and without PATU and compare
//! performance, energy, memory traffic and perceived quality.
//!
//! Run with: `cargo run --release -p patu-sim --example quickstart`

use patu_core::FilterPolicy;
use patu_energy::EnergyModel;
use patu_quality::SsimConfig;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Doom3-style corridor at a quick-to-simulate resolution.
    let workload = Workload::build("doom3", (640, 480))?;
    let energy = EnergyModel::default();

    println!("rendering doom3 @ 640x480 under three filtering policies...\n");
    let policies = [
        ("Baseline 16xAF", FilterPolicy::Baseline),
        ("AF disabled", FilterPolicy::NoAf),
        (
            "PATU (threshold 0.4)",
            FilterPolicy::Patu { threshold: 0.4 },
        ),
    ];

    let baseline = render_frame(&workload, 0, &RenderConfig::new(FilterPolicy::Baseline))?;
    let baseline_luma = baseline.luma();
    let ssim = SsimConfig::default();

    println!(
        "{:<22} {:>12} {:>9} {:>12} {:>11} {:>8}",
        "policy", "cycles", "speedup", "texels", "energy(mJ)", "MSSIM"
    );
    for (label, policy) in policies {
        let result = render_frame(&workload, 0, &RenderConfig::new(policy))?;
        let e = energy.frame_energy(&result.stats).total_joules() * 1e3;
        let mssim = if matches!(policy, FilterPolicy::Baseline) {
            1.0
        } else {
            f64::from(ssim.mssim(&baseline_luma, &result.luma()))
        };
        println!(
            "{:<22} {:>12} {:>8.2}x {:>12} {:>11.3} {:>8.3}",
            label,
            result.stats.cycles,
            baseline.stats.cycles as f64 / result.stats.cycles as f64,
            result.stats.events.texel_fetches,
            e,
            mssim,
        );
    }

    let patu = render_frame(
        &workload,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
    )?;
    println!("\nPATU decision breakdown:");
    println!("  pixels decided:        {}", patu.approx.pixels);
    println!("  isotropic (no AF):     {}", patu.approx.isotropic);
    println!("  approximated stage 1:  {}", patu.approx.stage1_approx);
    println!("  approximated stage 2:  {}", patu.approx.stage2_approx);
    println!("  kept full AF:          {}", patu.approx.kept_af);
    println!(
        "  quad divergence:       {:.2}%",
        patu.divergence.divergence_fraction() * 100.0
    );
    Ok(())
}
