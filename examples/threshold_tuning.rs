//! Explores PATU's performance–quality tuning space (the paper's Fig. 17)
//! on one workload: speedup and MSSIM at each threshold, and the Best Point
//! maximizing speedup × MSSIM.
//!
//! Run with: `cargo run --release -p patu-sim --example threshold_tuning [game]`

use patu_scenes::Workload;
use patu_sim::experiment::{best_point, threshold_sweep, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let game = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "grid".to_string());
    let workload = Workload::build(&game, (480, 384))?;
    let cfg = ExperimentConfig {
        frames: 2,
        frame_stride: 200,
        ..Default::default()
    };

    println!(
        "threshold sweep on {game} @ 480x384 ({} frames)...\n",
        cfg.frames
    );
    let thresholds: Vec<f64> = (0..=10).map(|i| f64::from(i) / 10.0).collect();
    let (baseline, sweep) = threshold_sweep(&workload, &thresholds, &cfg)?;

    println!(
        "{:>9} {:>9} {:>8} {:>15}",
        "threshold", "speedup", "MSSIM", "speedup*MSSIM"
    );
    for (t, r) in &sweep {
        println!(
            "{:>9.1} {:>8.3}x {:>8.3} {:>15.3}",
            t,
            r.speedup_vs(&baseline),
            r.mssim,
            r.tuning_metric(&baseline)
        );
    }

    let bp = best_point(&baseline, &sweep);
    println!("\nBest Point (max speedup x MSSIM): threshold = {bp:.1}");
    Ok(())
}
