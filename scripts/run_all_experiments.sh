#!/usr/bin/env bash
# Regenerates every table and figure of the paper with the fast profile,
# capturing each harness binary's output under out/.
# Usage: scripts/run_all_experiments.sh [--full] [--frames N]
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p out

BINS=(headline table1 table2 fig04 fig05 fig06 fig07 fig08 fig12 fig17 fig18 fig19 fig20 fig21 fig22 quad_divergence \
      ablation_table ablation_maxaniso ablation_bp ablation_oracle ablation_traversal ablation_temporal)
for bin in "${BINS[@]}"; do
    echo "=== $bin ==="
    cargo run --release -q -p patu-bench --bin "$bin" -- "$@" | tee "out/$bin.txt"
    echo
done
echo "all outputs written to out/*.txt"
