#!/usr/bin/env bash
# Benchmark sweep: runs every micro-benchmark target plus the headline
# paper-metrics binary. Each group writes BENCH_<name>.json at the repo
# root (micro benches: median/p10/p90 ns per iteration; headline: serial
# vs 4-thread sweep wall time, speedup, host core count, and the
# paper-abstract metrics). BENCH_headline.json also records the telemetry
# overhead of this build: `trace_off_ms` vs `trace_spans_ms` is the wall
# time of one reference render_frame with tracing off vs full span tracing
# (the off path must stay within the noise of an untraced build).
#
# Usage: scripts/bench.sh [headline args, e.g. --full --frames N]

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> micro-benchmarks: cargo bench -p patu-bench"
cargo bench -p patu-bench

echo "==> headline: cargo run --release -p patu-bench --bin headline"
cargo run --release -p patu-bench --bin headline -- "$@"

echo "==> serve: cargo run --release -p patu-bench --bin serve_bench"
cargo run --release -p patu-bench --bin serve_bench

echo "==> chaos: cargo run --release -p patu-bench --bin serve_chaos"
cargo run --release -p patu-bench --bin serve_chaos

echo "==> temporal: cargo run --release -p patu-bench --bin temporal_bench"
cargo run --release -p patu-bench --bin temporal_bench

echo "==> perf gate: cargo run --release -p patu-bench --bin bench_smoke"
cargo run --release -p patu-bench --bin bench_smoke

echo "==> lint cache gate: cargo run --release -p patu-bench --bin lint_bench"
cargo run --release -p patu-bench --bin lint_bench

echo "==> bench artifacts:"
ls -1 BENCH_*.json
