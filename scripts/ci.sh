#!/usr/bin/env bash
# Offline CI gate: everything here must pass with no network access.
#
#   1. Tier-1: release build + the full test suite (unit, integration,
#      property sweeps, the chaos/fault-injection suite, doc-tests) —
#      run twice, serial (PATU_THREADS=1) and multi-threaded
#      (PATU_THREADS=4), because every simulator output must be
#      bit-identical across thread counts.
#   2. Telemetry smoke: a traced render (PATU_TRACE=spans) whose JSONL
#      artifact must validate line-by-line against the in-repo schema
#      checker (trace_check).
#   3. Serve smoke: a small overloaded serving session run at both thread
#      counts — sessions must be bit-identical and the serve log must
#      validate against the JSONL schema (serve_smoke).
#   4. Chaos smoke: every named failure scenario (flap, half-pool outage,
#      straggler storm, ...) run resilience-on and -off at both thread
#      counts — sessions must be bit-identical, conserve every job, and
#      keep the serve log schema-clean (serve_chaos --smoke).
#   5. Bench smoke: the perf gate (bench_smoke) re-measures the batched
#      SoA kernel vs. the scalar filter path and the sampled MSSIM
#      estimator vs. the full scan, and hard-fails if either ratio
#      regresses >10% against the recorded BENCH_*.json baselines.
#      The temporal smoke (temporal_bench --smoke) then proves cross-frame
#      tile reuse fires on the slow-orbit preset, holds the MSSIM floor,
#      emits schema-clean temporal JSONL lines, and stays byte-identical
#      between thread counts.
#   6. Report smoke: the observability gate (patu_report --check) —
#      per-frame cycle attribution must conserve on every bundled scene
#      and hold against BENCH_attribution.json, a half-pool-outage chaos
#      session must fire SLO burn alerts at deterministic cycles with a
#      schema-clean trace tree per job, and the trace/SLO artifacts must
#      be byte-identical across thread counts.
#   7. Lint: patu-lint v2 (the workspace invariant checker — token rules
#      plus the interprocedural determinism pass: call-graph knob
#      reachability, RNG/float-fold taint, schema-sync; hard fail on any
#      violation or stale pragma), run incrementally with a SARIF artifact
#      that must pass the structural validator and a `--fix --check` gate
#      proving no mechanical rewrite is pending; then clippy over every
#      target (libs, bins, tests, benches, examples) with warnings promoted
#      to errors, and cargo fmt --check.
#
# Usage: scripts/ci.sh [--skip-lint]

set -euo pipefail
cd "$(dirname "$0")/.."

# The workspace has no external dependencies, so force cargo offline: a CI
# host without network must behave identically to one with it.
export CARGO_NET_OFFLINE=true

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: PATU_THREADS=1 cargo test -q (serial)"
PATU_THREADS=1 cargo test -q

echo "==> tier-1: PATU_THREADS=4 cargo test -q (parallel runtime)"
PATU_THREADS=4 cargo test -q

echo "==> telemetry smoke: traced render + JSONL schema validation"
TRACE_DIR="target/ci-trace"
rm -rf "$TRACE_DIR"
PATU_TRACE=spans PATU_TRACE_OUT="$TRACE_DIR" \
    cargo run -q --release -p patu-bench --bin trace_smoke
PATU_TRACE_OUT="$TRACE_DIR" cargo run -q --release -p patu-bench --bin trace_check

echo "==> serve smoke: bit-identical sessions + schema-validated serve log"
cargo run -q --release -p patu-bench --bin serve_smoke

echo "==> chaos smoke: deterministic failure scenarios, resilience on/off"
cargo run -q --release -p patu-bench --bin serve_chaos -- --smoke

echo "==> bench --smoke: perf ratio gate vs recorded BENCH_*.json baselines"
cargo run -q --release -p patu-bench --bin bench_smoke

echo "==> temporal smoke: tile reuse fires, MSSIM floor holds, threads 1 == 4"
cargo run -q --release -p patu-bench --bin temporal_bench -- --smoke

echo "==> report smoke: attribution conservation + trace/SLO determinism gate"
cargo run -q --release -p patu-bench --bin patu_report -- --check

if [[ "${1:-}" != "--skip-lint" ]]; then
    echo "==> lint: patu-lint (workspace invariants, incremental + pragma debt)"
    cargo run -q --release -p patu-lint -- --incremental --debt

    echo "==> lint: SARIF artifact + structural validation"
    mkdir -p target/patu-lint
    cargo run -q --release -p patu-lint -- --incremental --format sarif \
        > target/patu-lint/lint.sarif
    cargo run -q --release -p patu-lint -- --check-sarif target/patu-lint/lint.sarif

    echo "==> lint: patu-lint --fix --check (no mechanical rewrites pending)"
    cargo run -q --release -p patu-lint -- --fix --check

    echo "==> lint: cargo clippy --all-targets -- -D warnings"
    cargo clippy --all-targets -- -D warnings

    echo "==> lint: cargo fmt --check"
    cargo fmt --check
fi

echo "==> ci green"
